"""CI gate: fused execution must not lose to the step-by-step path.

Run after the quick exec-plan bench::

    PYTHONPATH=src python benchmarks/check_fused_regression.py \
        benchmarks/results/BENCH_exec_plan.json

Validates the ``fused`` section the bench emitted: the steady-state
fused-vs-stepwise speedup (interleaved best-of-N on the branch-heavy
quick workload) must exceed the guard threshold, the run must have been
bit-identical to the step-by-step path, and fusion must actually have
engaged (at least one multi-step fused run).

Also validates the ``fused_engines`` section (the tape-engine matrix):
the three engines were bit-identical, the batched plan's fusion
coverage cleared its fraction gate with batched-GEMM ops inside the
runs, and — only when the bench ran with numba installed
(``native_available``) — the native tape kernel cleared its speed gates
over the fused Python walker and the step-by-step path.

Exits non-zero on any violation, so a regression that makes the fused
executor slower — or silently disables it — fails the CI job instead of
shipping.  Checks raise explicitly (no ``assert``), so the gate also
holds under ``python -O``.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

class RegressionError(RuntimeError):
    """A fused-execution regression (or a silently disabled fused path)."""


def _threshold(fused: dict) -> float:
    """The guard threshold: the one the bench recorded, env-overridable.

    The bench stamps its ``REPRO_BENCH_FUSED_MIN_SPEEDUP`` into
    ``fused["min_speedup"]``, so a standalone checker run enforces the
    same contract the bench measured against; setting the env var here
    explicitly overrides it.
    """
    override = os.environ.get("REPRO_BENCH_FUSED_MIN_SPEEDUP")
    if override is not None:
        return float(override)
    return float(fused.get("min_speedup", 1.0))


def _gate(name: str, recorded, env: str) -> float:
    """An env override beats the threshold the bench recorded."""
    override = os.environ.get(env)
    if override is not None:
        return float(override)
    if recorded is None:
        raise RegressionError(f"bench JSON recorded no {name} threshold")
    return float(recorded)


def check_engines(point: dict) -> None:
    """Validate the tape-engine matrix section of the bench point."""
    engines = point.get("fused_engines")
    if not engines:
        raise RegressionError(
            "bench JSON has no 'fused_engines' section; the tape-engine "
            "matrix did not run"
        )
    if engines.get("bit_identical") is not True:
        raise RegressionError("tape engines were not bit-identical")

    batched = engines.get("batched") or {}
    min_fraction = _gate(
        "batched fused fraction",
        batched.get("min_fraction"),
        "REPRO_BENCH_BATCHED_FUSED_MIN_FRACTION",
    )
    fraction = float(batched.get("fused_fraction", 0.0))
    print(
        f"batched plan: {batched.get('fused_steps', 0)}/"
        f"{batched.get('slot_gemm_steps', 0)} slot GEMM steps fused "
        f"({fraction:.0%}, gate: >= {min_fraction:.0%}), "
        f"{batched.get('bmm_fused_ops', 0)} batched-GEMM ops in runs"
    )
    if fraction < min_fraction:
        raise RegressionError(
            f"fusion covers only {fraction:.0%} of the batched plan's slot "
            f"GEMM steps (gate: >= {min_fraction:.0%})"
        )
    if int(batched.get("bmm_fused_ops", 0)) <= 0:
        raise RegressionError(
            "no batched-GEMM step inside a fused run: the bmm fusion "
            "extension is disabled or broken"
        )

    if not engines.get("native_available"):
        print("native engine: numba absent when the bench ran; speed gates skipped")
        return
    if engines.get("tape_engine") != "native":
        raise RegressionError(
            "numba was available but the fused executor did not resolve "
            "to the native tape engine"
        )
    vs_python = float(engines["native_vs_python"])
    vs_stepwise = float(engines["native_vs_stepwise"])
    min_vs_python = _gate(
        "native-vs-python",
        engines.get("min_native_vs_python"),
        "REPRO_BENCH_NATIVE_MIN_VS_PYTHON",
    )
    min_vs_stepwise = _gate(
        "native-vs-stepwise",
        engines.get("min_native_vs_stepwise"),
        "REPRO_BENCH_NATIVE_MIN_VS_STEPWISE",
    )
    print(
        f"native kernel: {vs_python:.3f}x fused-python (gate: > {min_vs_python}), "
        f"{vs_stepwise:.3f}x stepwise (gate: > {min_vs_stepwise})"
    )
    if vs_python <= min_vs_python:
        raise RegressionError(
            f"native tape kernel regressed to {vs_python:.3f}x the fused "
            f"Python walker (gate: > {min_vs_python})"
        )
    if vs_stepwise <= min_vs_stepwise:
        raise RegressionError(
            f"native tape kernel regressed to {vs_stepwise:.3f}x the "
            f"step-by-step path (gate: > {min_vs_stepwise})"
        )


def main(path: str) -> int:
    point = json.loads(Path(path).read_text())
    fused = point.get("fused")
    if not fused:
        raise RegressionError(
            "bench JSON has no 'fused' section; the fused row did not run"
        )
    min_speedup = _threshold(fused)
    speedup = float(fused["fused_vs_stepwise"])
    stepwise = float(fused["steady_state_stepwise_seconds"])
    fused_seconds = float(fused["steady_state_fused_seconds"])
    print(
        f"steady state: stepwise {stepwise * 1000:.2f} ms, "
        f"fused {fused_seconds * 1000:.2f} ms -> {speedup:.3f}x "
        f"(guard: > {min_speedup})"
    )

    if fused.get("bit_identical") is not True:
        raise RegressionError("fused run was not bit-identical")
    runs = fused.get("runs", [])
    if not runs:
        raise RegressionError("fusion pass produced no runs on the quick workload")
    if any(run["steps"] < 2 for run in runs):
        raise RegressionError("a fused run shorter than 2 steps was emitted")
    if speedup <= min_speedup:
        raise RegressionError(
            f"fused execution regressed: {speedup:.3f}x <= {min_speedup} "
            "vs the step-by-step path on the branch-heavy quick workload"
        )
    check_engines(point)
    print("fused regression guard OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1] if len(sys.argv) > 1 else "benchmarks/results/BENCH_exec_plan.json"))
