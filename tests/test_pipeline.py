"""End-to-end tests of the SimulationPlanner pipeline."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import SimulationPlan, SimulationPlanner
from repro.circuits import amplitude, grid_circuit, random_brickwork_circuit
from repro.execution import strong_scaling


@pytest.fixture(scope="module")
def planned_grid():
    planner = SimulationPlanner(target_rank=12, ldm_rank=7, max_trials=8, seed=0)
    circuit = grid_circuit(4, 5, cycles=8, seed=3)
    return planner.plan_circuit(circuit)


class TestPlanning:
    def test_plan_is_complete(self, planned_grid):
        plan = planned_grid
        assert isinstance(plan, SimulationPlan)
        assert plan.tree.num_leaves == plan.network.num_tensors
        assert plan.slicing.satisfies_target
        assert plan.slicing.max_rank <= 12
        assert plan.fused_plan.total_steps == plan.stem.length
        assert set(plan.timings) == {"step-by-step", "fused"}

    def test_summary_keys_and_values(self, planned_grid):
        summary = planned_grid.summary()
        expected_keys = {
            "num_tensors",
            "log10_total_cost",
            "max_rank",
            "num_sliced",
            "num_subtasks",
            "slicing_overhead",
            "stem_cost_fraction",
            "fused_groups",
            "average_fused_steps",
            "arithmetic_intensity_gain",
            "subtask_seconds",
            "thread_speedup",
        }
        assert expected_keys <= set(summary)
        assert summary["slicing_overhead"] >= 1.0
        assert summary["num_subtasks"] == 2 ** summary["num_sliced"]
        assert 0 < summary["stem_cost_fraction"] <= 1.0

    def test_scheduler_and_scaling(self, planned_grid):
        scheduler = planned_grid.scheduler()
        points = strong_scaling(scheduler, num_subtasks=1024, node_counts=[8, 16, 32])
        assert len(points) == 3
        assert points[0].elapsed_seconds >= points[-1].elapsed_seconds

    def test_compute_time_decreases_with_nodes(self, planned_grid):
        # per-node compute shrinks with more nodes; the (tiny-workload) total
        # may be dominated by the all-reduce, so compare the compute part
        scheduler = planned_grid.scheduler(result_bytes=8.0)
        subtasks = max(int(planned_grid.num_subtasks), 64)
        assert scheduler.compute_seconds(subtasks, 64) <= scheduler.compute_seconds(subtasks, 4)
        assert planned_grid.estimated_seconds(4) > 0

    def test_headline_projection_consistency(self, planned_grid):
        projection = planned_grid.headline_projection(measured_nodes=64, projected_nodes=1024)
        assert projection.projected_seconds == pytest.approx(
            projection.measured_seconds * 64 / 1024
        )
        assert projection.sustained_pflops >= 0

    def test_default_target_rank_comes_from_main_memory(self):
        planner = SimulationPlanner(seed=0)
        assert planner.target_rank == planner.hierarchy.target_rank_for("main_memory")
        assert planner.ldm_rank == 13

    def test_plan_network_directly(self, planned_grid):
        planner = SimulationPlanner(target_rank=12, ldm_rank=7, max_trials=4, seed=1)
        replanned = planner.plan_network(planned_grid.network)
        assert replanned.slicing.satisfies_target


class TestEndToEndCorrectness:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_planned_sliced_execution_matches_statevector(self, seed):
        circuit = random_brickwork_circuit(6, 4, seed=seed)
        bits = [(seed + q) % 2 for q in range(6)]
        planner = SimulationPlanner(target_rank=5, ldm_rank=4, max_trials=6, seed=seed)
        plan = planner.plan_circuit(circuit, bitstring=bits, concrete=True)
        value = planner.execute_plan(plan)
        assert value == pytest.approx(amplitude(circuit, bits), abs=1e-8)

    def test_forced_slicing_still_correct(self):
        """Push the target low enough that several edges must be sliced."""
        circuit = grid_circuit(3, 4, cycles=8, seed=5)
        bits = [0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 1, 0]
        planner = SimulationPlanner(target_rank=6, ldm_rank=4, max_trials=6, seed=2)
        plan = planner.plan_circuit(circuit, bitstring=bits, concrete=True)
        value = planner.execute_plan(plan)
        assert plan.slicing.num_sliced >= 1
        assert value == pytest.approx(amplitude(circuit, bits), abs=1e-8)

    def test_refinement_toggle(self):
        circuit = grid_circuit(3, 4, cycles=6, seed=6)
        base = SimulationPlanner(
            target_rank=8, ldm_rank=5, max_trials=4, refine_slices=False, seed=3
        ).plan_circuit(circuit)
        refined = SimulationPlanner(
            target_rank=8, ldm_rank=5, max_trials=4, refine_slices=True, seed=3
        ).plan_circuit(circuit)
        assert refined.slicing.overhead <= base.slicing.overhead + 1e-9
