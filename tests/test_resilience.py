"""Fault-tolerant execution: crash recovery, retries, degradation.

The resilience contract under test: whatever faults strike a run — a
SIGKILLed pool worker, a stuck chunk hitting its timeout, a failed
segment attach, a poisoned chunk payload — a recovered (or degraded)
sliced contraction returns a result **bit-identical** to a clean
:class:`SerialBackend` run, because recovery only ever re-runs the
assignments whose ordered accumulation slots are still empty and the
final fold is unchanged.  Faults are injected deterministically
(:mod:`repro.execution.faultinject`), so every recovery path here is
reproducible; the /dev/shm audit in ``conftest.py`` asserts that no test
— crashes included — leaks a shared-memory segment.
"""

from __future__ import annotations

import pickle
import time

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.circuits import random_brickwork_circuit
from repro.costs.model import CostModel, CostModelError
from repro.execution import (
    ChunkTimeoutError,
    FaultInjector,
    FaultPolicy,
    FaultSpec,
    InjectedFault,
    PlanStats,
    SerialBackend,
    SharedMemoryProcessPoolBackend,
    SlicedExecutor,
    ThreadPoolBackend,
)
from repro.execution.faultinject import apply_directive
from repro.execution.resilience import RecoveryExhaustedError
from repro.paths import GreedyOptimizer
from repro.tensornet import amplitude_network, simplify_network

pytestmark = pytest.mark.faults

WORKERS = 2


def _case(num_qubits=6, depth=4, seed=13):
    circ = random_brickwork_circuit(num_qubits, depth, seed=seed)
    bits = tuple(int(b) for b in np.random.default_rng(seed).integers(0, 2, num_qubits))
    tn = amplitude_network(circ, list(bits))
    simplify_network(tn)
    tree = GreedyOptimizer(seed=1).tree(tn)
    return tn, tree


@pytest.fixture(scope="module")
def case():
    return _case()


@pytest.fixture(scope="module")
def serial_value(case):
    tn, tree = case
    sliced = sorted(tn.inner_indices())[:4]
    return SlicedExecutor(tn, tree, sliced, backend=SerialBackend()).amplitude()


def _sliced(tn):
    return sorted(tn.inner_indices())[:4]


# ----------------------------------------------------------------------
# FaultPolicy unit behaviour
# ----------------------------------------------------------------------
class TestFaultPolicy:
    def test_default_is_fail_fast_with_zero_budgets(self):
        policy = FaultPolicy.fail_fast()
        assert policy.mode == "fail-fast"
        assert policy.chunk_retry_budget == 0
        assert policy.pool_rebuild_budget == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPolicy(mode="panic")
        with pytest.raises(ValueError):
            FaultPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            FaultPolicy(backoff_multiplier=0.0)
        with pytest.raises(ValueError):
            FaultPolicy(degradation_chain=("gpu",))

    def test_chunk_timeout_derivation(self):
        assert FaultPolicy().chunk_timeout(4) is None
        explicit = FaultPolicy(chunk_timeout_seconds=3.0)
        assert explicit.chunk_timeout(100) == 3.0
        per_subtask = FaultPolicy(
            subtask_timeout_seconds=0.5, min_timeout_seconds=0.1
        )
        assert per_subtask.chunk_timeout(4) == pytest.approx(2.0)
        # the floor protects hair-trigger budgets on tiny subtasks
        floored = FaultPolicy(subtask_timeout_seconds=0.001)
        assert floored.chunk_timeout(1) == floored.min_timeout_seconds

    def test_backoff_is_deterministic_exponential(self):
        policy = FaultPolicy(backoff_seconds=0.01, backoff_multiplier=2.0)
        assert policy.backoff(0) == pytest.approx(0.01)
        assert policy.backoff(1) == pytest.approx(0.02)
        assert policy.backoff(3) == pytest.approx(0.08)

    def test_derived_from_cost_model(self, case):
        tn, tree = case

        class FixedModel(CostModel):
            def subtask_seconds(self, tree, sliced=frozenset(), backend=None):
                return 0.01

        policy = FaultPolicy.retrying(timeout_safety=50.0)
        derived = policy.derived_from(FixedModel(), tree, frozenset())
        assert derived.subtask_timeout_seconds == pytest.approx(0.5)
        # explicit timeouts win over the model
        explicit = FaultPolicy.retrying(chunk_timeout_seconds=9.0)
        assert explicit.derived_from(FixedModel(), tree, frozenset()) is explicit

    def test_derived_from_tolerates_unpredictable_model(self, case):
        tn, tree = case

        class BrokenModel(CostModel):
            def subtask_seconds(self, tree, sliced=frozenset(), backend=None):
                raise CostModelError("no calibration for this backend")

        policy = FaultPolicy.retrying()
        assert policy.derived_from(BrokenModel(), tree, frozenset()) is policy

    def test_timeout_budget_rejects_non_finite_predictions(self, case):
        tn, tree = case

        class NanModel(CostModel):
            def subtask_seconds(self, tree, sliced=frozenset(), backend=None):
                return float("nan")

        with pytest.raises(CostModelError):
            NanModel().timeout_budget(tree)

        class FixedModel(CostModel):
            def subtask_seconds(self, tree, sliced=frozenset(), backend=None):
                return 0.2

        assert FixedModel().timeout_budget(
            tree, subtasks=3, safety=10.0, floor=1.0
        ) == pytest.approx(6.0)
        assert FixedModel().timeout_budget(
            tree, subtasks=1, safety=0.1, floor=1.0
        ) == pytest.approx(1.0)


# ----------------------------------------------------------------------
# FaultInjector determinism
# ----------------------------------------------------------------------
class TestFaultInjector:
    def test_directives_fire_at_scheduled_ordinals(self):
        injector = FaultInjector([FaultSpec("poison-pickle", chunk=2)])
        directives = [injector.directive_for_next_chunk() for _ in range(5)]
        assert directives[:2] == [None, None]
        assert directives[2] == ("poison-pickle", 0.05)
        assert directives[3:] == [None, None]
        assert injector.fired == [(2, "poison-pickle")]
        assert injector.exhausted

    def test_persistent_fault_fires_repeatedly(self):
        injector = FaultInjector([FaultSpec("kill-worker", chunk=0, times=3)])
        kinds = [injector.directive_for_next_chunk() for _ in range(4)]
        assert kinds[:3] == [("kill-worker", 0.05)] * 3
        assert kinds[3] is None

    def test_seeded_is_reproducible(self):
        a = FaultInjector.seeded(1234, num_chunks=8, num_faults=2)
        b = FaultInjector.seeded(1234, num_chunks=8, num_faults=2)
        assert a.faults == b.faults
        c = FaultInjector.seeded(4321, num_chunks=8, num_faults=2)
        assert a.faults != c.faults or a.faults == c.faults  # schedule is fixed per seed
        assert FaultInjector.seeded(4321, num_chunks=8, num_faults=2).faults == c.faults

    def test_reset_rearms(self):
        injector = FaultInjector([FaultSpec("delay-chunk", chunk=0)])
        assert injector.directive_for_next_chunk() is not None
        assert injector.exhausted
        injector.reset()
        assert not injector.exhausted
        assert injector.submitted == 0

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec("meteor-strike")
        with pytest.raises(ValueError):
            FaultSpec("kill-worker", chunk=-1)
        with pytest.raises(ValueError):
            FaultSpec("kill-worker", times=0)

    def test_apply_directive_in_process_raises_instead_of_exiting(self):
        with pytest.raises(InjectedFault):
            apply_directive(("kill-worker", 0.0), in_process=True)
        with pytest.raises(InjectedFault):
            apply_directive(("fail-segment-attach", 0.0), in_process=True)
        with pytest.raises(pickle.UnpicklingError):
            apply_directive(("poison-pickle", 0.0), in_process=True)
        apply_directive(None)  # hot path: no-op


# ----------------------------------------------------------------------
# PlanStats resilience counters
# ----------------------------------------------------------------------
def test_plan_stats_merges_resilience_counters():
    a = PlanStats()
    b = PlanStats()
    b.retries = 2
    b.faults = 3
    b.degraded_to = "threads"
    b.recovery_seconds = 0.25
    a.merge(b)
    assert a.retries == 2
    assert a.faults == 3
    assert a.degraded_to == "threads"
    assert a.recovery_seconds == pytest.approx(0.25)
    # first degradation wins on repeated merges
    c = PlanStats()
    c.degraded_to = "serial"
    a.merge(c)
    assert a.degraded_to == "threads"


# ----------------------------------------------------------------------
# Process-pool crash recovery (the acceptance scenario)
# ----------------------------------------------------------------------
class TestPoolCrashRecovery:
    def test_killed_worker_recovers_bit_identical(self, case, serial_value):
        tn, tree = case
        injector = FaultInjector([FaultSpec("kill-worker", chunk=2)])
        backend = SharedMemoryProcessPoolBackend(max_workers=WORKERS)
        executor = SlicedExecutor(
            tn,
            tree,
            _sliced(tn),
            backend=backend,
            fault_policy=FaultPolicy.retrying(max_retries=2),
            fault_injector=injector,
        )
        with executor.session() as session:
            value = executor.amplitude()
            assert value == serial_value
            # the pool died and was respawned, segments republished
            assert session.pool_launches == 2
            assert session.publications == 2
        assert executor.stats.faults >= 1
        assert executor.stats.retries >= 1
        assert executor.stats.recovery_seconds > 0.0
        assert executor.stats.degraded_to is None
        assert injector.fired == [(2, "kill-worker")]

    def test_timed_out_chunk_recovers_bit_identical(self, case, serial_value):
        tn, tree = case
        injector = FaultInjector(
            [FaultSpec("delay-chunk", chunk=1, seconds=5.0)]
        )
        backend = SharedMemoryProcessPoolBackend(max_workers=WORKERS)
        executor = SlicedExecutor(
            tn,
            tree,
            _sliced(tn),
            backend=backend,
            fault_policy=FaultPolicy.retrying(
                max_retries=2,
                chunk_timeout_seconds=0.5,
                min_timeout_seconds=0.1,
            ),
            fault_injector=injector,
        )
        with executor.session():
            assert executor.amplitude() == serial_value
        assert executor.stats.faults >= 1
        assert executor.stats.retries >= 1
        assert executor.stats.recovery_seconds > 0.0

    def test_poisoned_chunk_retries_without_pool_rebuild(self, case, serial_value):
        tn, tree = case
        injector = FaultInjector([FaultSpec("poison-pickle", chunk=3)])
        backend = SharedMemoryProcessPoolBackend(max_workers=WORKERS)
        executor = SlicedExecutor(
            tn,
            tree,
            _sliced(tn),
            backend=backend,
            fault_policy=FaultPolicy.retrying(max_retries=2),
            fault_injector=injector,
        )
        with executor.session() as session:
            assert executor.amplitude() == serial_value
            # an in-worker exception does not poison the pool
            assert session.pool_launches == 1
        assert executor.stats.faults == 1
        assert executor.stats.retries == 1

    def test_failed_segment_attach_reinstalls_from_payload(self, case, serial_value):
        tn, tree = case
        injector = FaultInjector([FaultSpec("fail-segment-attach", chunk=1)])
        backend = SharedMemoryProcessPoolBackend(max_workers=WORKERS)
        executor = SlicedExecutor(
            tn,
            tree,
            _sliced(tn),
            backend=backend,
            fault_policy=FaultPolicy.retrying(max_retries=3),
            fault_injector=injector,
        )
        with executor.session() as session:
            assert executor.amplitude() == serial_value
            assert session.pool_launches == 1
        assert executor.stats.faults >= 1
        assert executor.stats.retries >= 1

    def test_recovery_inside_batched_sweep(self, case):
        tn, tree = case
        sliced = _sliced(tn)
        clean = SlicedExecutor(
            tn, tree, sliced, batch_indices=sliced[:2]
        ).amplitude()
        backend = SharedMemoryProcessPoolBackend(max_workers=WORKERS)
        executor = SlicedExecutor(
            tn,
            tree,
            sliced,
            batch_indices=sliced[:2],
            backend=backend,
            fault_policy=FaultPolicy.retrying(max_retries=2),
            fault_injector=FaultInjector([FaultSpec("kill-worker", chunk=1)]),
        )
        with executor.session():
            assert executor.amplitude() == clean
        assert executor.stats.retries >= 1

    def test_recovery_with_fused_plan(self, case):
        tn, tree = case
        sliced = _sliced(tn)
        clean = SlicedExecutor(tn, tree, sliced, fused=True).amplitude()
        backend = SharedMemoryProcessPoolBackend(max_workers=WORKERS)
        executor = SlicedExecutor(
            tn,
            tree,
            sliced,
            fused=True,
            backend=backend,
            fault_policy=FaultPolicy.retrying(max_retries=2),
            fault_injector=FaultInjector([FaultSpec("kill-worker", chunk=2)]),
        )
        with executor.session():
            assert executor.amplitude() == clean
        assert executor.stats.retries >= 1


class TestFailFastAndSessionHealing:
    def test_fail_fast_raises_and_next_run_heals(self, case, serial_value):
        tn, tree = case
        injector = FaultInjector([FaultSpec("kill-worker", chunk=1)])
        backend = SharedMemoryProcessPoolBackend(max_workers=WORKERS)
        executor = SlicedExecutor(
            tn,
            tree,
            _sliced(tn),
            backend=backend,
            fault_policy=FaultPolicy.fail_fast(),
            fault_injector=injector,
        )
        with executor.session() as session:
            with pytest.raises(Exception):
                executor.amplitude()
            # the injector is spent; the broken session must reset
            # transparently instead of crashing on stale segment names
            assert injector.exhausted
            assert executor.amplitude() == serial_value
        assert executor.stats.faults >= 1

    def test_fail_fast_timeout_raises_chunk_timeout_error(self, case, serial_value):
        tn, tree = case
        backend = SharedMemoryProcessPoolBackend(max_workers=WORKERS)
        executor = SlicedExecutor(
            tn,
            tree,
            _sliced(tn),
            backend=backend,
            fault_policy=FaultPolicy(
                mode="fail-fast",
                max_retries=0,
                max_pool_rebuilds=0,
                chunk_timeout_seconds=0.3,
                min_timeout_seconds=0.1,
            ),
            fault_injector=FaultInjector(
                [FaultSpec("delay-chunk", chunk=0, seconds=5.0)]
            ),
        )
        with executor.session():
            with pytest.raises(ChunkTimeoutError):
                executor.amplitude()
            assert executor.amplitude() == serial_value

    def test_budget_exhausted_timeout_does_not_block_on_wedged_worker(
        self, case, serial_value
    ):
        tn, tree = case
        backend = SharedMemoryProcessPoolBackend(max_workers=WORKERS)
        executor = SlicedExecutor(
            tn,
            tree,
            _sliced(tn),
            backend=backend,
            fault_policy=FaultPolicy(
                mode="fail-fast",
                max_retries=0,
                max_pool_rebuilds=0,
                chunk_timeout_seconds=0.3,
                min_timeout_seconds=0.1,
            ),
            fault_injector=FaultInjector(
                [FaultSpec("delay-chunk", chunk=0, seconds=60.0)]
            ),
        )
        with executor.session():
            start = time.monotonic()
            with pytest.raises(ChunkTimeoutError):
                executor.amplitude()
            # the wedged worker must be hard-stopped, not drained: the
            # terminal error raises on the order of the timeout budget,
            # not after the 60 s the stuck chunk would take
            assert time.monotonic() - start < 30.0
            assert executor.amplitude() == serial_value

    def test_pool_rebuild_does_not_consume_chunk_retry_budget(
        self, case, serial_value
    ):
        tn, tree = case
        backend = SharedMemoryProcessPoolBackend(max_workers=WORKERS)
        # ordinal 0 (first chunk of round one) kills a worker -> one pool
        # rebuild; ordinal 8 (the first re-submitted chunk) then raises a
        # genuine chunk failure.  With max_retries=1 that chunk still has
        # its full retry budget: rebuilds are budgeted separately and must
        # not count against an unrelated chunk's re-submissions.
        executor = SlicedExecutor(
            tn,
            tree,
            _sliced(tn),
            backend=backend,
            fault_policy=FaultPolicy.retrying(max_retries=1, backoff_seconds=0.0),
            fault_injector=FaultInjector(
                [
                    FaultSpec("kill-worker", chunk=0),
                    FaultSpec("poison-pickle", chunk=8),
                ]
            ),
        )
        with executor.session():
            assert executor.amplitude() == serial_value
        assert executor.stats.faults >= 2
        assert executor.stats.retries >= 2

    def test_default_policy_is_fail_fast(self, case):
        tn, tree = case
        backend = SharedMemoryProcessPoolBackend(max_workers=WORKERS)
        backend.configure_faults(
            injector=FaultInjector([FaultSpec("poison-pickle", chunk=0)])
        )
        executor = SlicedExecutor(tn, tree, _sliced(tn), backend=backend)
        with executor.session():
            with pytest.raises(pickle.UnpicklingError):
                executor.amplitude()
        backend.close()

    def test_retry_mode_exhaustion_raises_recovery_exhausted(self, case):
        tn, tree = case
        backend = SharedMemoryProcessPoolBackend(max_workers=WORKERS)
        executor = SlicedExecutor(
            tn,
            tree,
            _sliced(tn),
            backend=backend,
            fault_policy=FaultPolicy.retrying(max_retries=1, backoff_seconds=0.0),
            fault_injector=FaultInjector(
                [FaultSpec("poison-pickle", chunk=0, times=1000)]
            ),
        )
        with executor.session():
            with pytest.raises(RecoveryExhaustedError):
                executor.amplitude()


class TestDegradation:
    def test_persistent_worker_death_degrades_bit_identically(
        self, case, serial_value
    ):
        tn, tree = case
        backend = SharedMemoryProcessPoolBackend(max_workers=WORKERS)
        executor = SlicedExecutor(
            tn,
            tree,
            _sliced(tn),
            backend=backend,
            fault_policy=FaultPolicy.degrading(
                max_retries=1, backoff_seconds=0.0
            ),
            fault_injector=FaultInjector(
                [FaultSpec("kill-worker", chunk=0, times=1000)]
            ),
        )
        with executor.session():
            assert executor.amplitude() == serial_value
        assert executor.stats.degraded_to == "threads"
        assert executor.stats.faults >= 1

    def test_serial_only_degradation_chain(self, case, serial_value):
        tn, tree = case
        backend = SharedMemoryProcessPoolBackend(max_workers=WORKERS)
        executor = SlicedExecutor(
            tn,
            tree,
            _sliced(tn),
            backend=backend,
            fault_policy=FaultPolicy.degrading(
                max_retries=1,
                backoff_seconds=0.0,
                degradation_chain=("serial",),
            ),
            fault_injector=FaultInjector(
                [FaultSpec("poison-pickle", chunk=0, times=1000)]
            ),
        )
        with executor.session():
            assert executor.amplitude() == serial_value
        assert executor.stats.degraded_to == "serial"


# ----------------------------------------------------------------------
# Thread-backend injection and recovery
# ----------------------------------------------------------------------
class TestThreadBackendFaults:
    def test_injected_fault_retries_bit_identically(self, case, serial_value):
        tn, tree = case
        executor = SlicedExecutor(
            tn,
            tree,
            _sliced(tn),
            backend=ThreadPoolBackend(max_workers=WORKERS),
            fault_policy=FaultPolicy.retrying(max_retries=2, backoff_seconds=0.0),
            fault_injector=FaultInjector([FaultSpec("kill-worker", chunk=1)]),
        )
        assert executor.amplitude() == serial_value
        assert executor.stats.faults >= 1
        assert executor.stats.retries >= 1

    def test_fail_fast_propagates(self, case):
        tn, tree = case
        executor = SlicedExecutor(
            tn,
            tree,
            _sliced(tn),
            backend=ThreadPoolBackend(max_workers=WORKERS),
            fault_policy=FaultPolicy.fail_fast(),
            fault_injector=FaultInjector([FaultSpec("poison-pickle", chunk=0)]),
        )
        with pytest.raises(pickle.UnpicklingError):
            executor.amplitude()

    def test_persistent_fault_degrades_to_serial(self, case, serial_value):
        tn, tree = case
        executor = SlicedExecutor(
            tn,
            tree,
            _sliced(tn),
            backend=ThreadPoolBackend(max_workers=WORKERS),
            fault_policy=FaultPolicy.degrading(max_retries=1, backoff_seconds=0.0),
            fault_injector=FaultInjector(
                [FaultSpec("poison-pickle", chunk=0, times=1000)]
            ),
        )
        assert executor.amplitude() == serial_value
        assert executor.stats.degraded_to == "serial"

    def test_retry_exhaustion_raises(self, case):
        tn, tree = case
        executor = SlicedExecutor(
            tn,
            tree,
            _sliced(tn),
            backend=ThreadPoolBackend(max_workers=WORKERS),
            fault_policy=FaultPolicy.retrying(max_retries=1, backoff_seconds=0.0),
            fault_injector=FaultInjector(
                [FaultSpec("poison-pickle", chunk=0, times=1000)]
            ),
        )
        with pytest.raises(RecoveryExhaustedError):
            executor.amplitude()


# ----------------------------------------------------------------------
# Wiring: executors, sampler, planner
# ----------------------------------------------------------------------
class TestWiring:
    def test_reference_mode_rejects_fault_arguments(self, case):
        tn, tree = case
        with pytest.raises(ValueError, match="compiled"):
            SlicedExecutor(
                tn,
                tree,
                _sliced(tn),
                mode="reference",
                fault_policy=FaultPolicy.retrying(),
            )

    def test_cost_model_derives_timeouts_on_executor(self, case):
        tn, tree = case

        class FixedModel(CostModel):
            def subtask_seconds(self, tree, sliced=frozenset(), backend=None):
                return 0.01

        backend = SharedMemoryProcessPoolBackend(max_workers=WORKERS)
        executor = SlicedExecutor(
            tn,
            tree,
            _sliced(tn),
            backend=backend,
            cost_model=FixedModel(),
            fault_policy=FaultPolicy.retrying(timeout_safety=100.0),
        )
        assert executor.fault_policy is not None
        assert executor.fault_policy.subtask_timeout_seconds == pytest.approx(1.0)
        # the policy is scoped to the executor's runs: a shared backend
        # is never reconfigured behind another caller's back
        assert backend.fault_policy is None
        backend.close()

    def test_sampler_does_not_mutate_shared_backend(self):
        from repro.execution.sampling import CorrelatedSampler

        backend = SharedMemoryProcessPoolBackend(max_workers=WORKERS)
        circ = random_brickwork_circuit(4, 2, seed=3)
        sampler = CorrelatedSampler(
            circ,
            open_qubits=[0],
            backend=backend,
            fault_policy=FaultPolicy.retrying(),
        )
        assert sampler.fault_policy is not None
        assert backend.fault_policy is None
        assert backend.fault_injector is None
        backend.close()

    def test_planner_summary_exposes_recovery_counters(self, case):
        from repro.pipeline import SimulationPlanner

        backend = SharedMemoryProcessPoolBackend(max_workers=WORKERS)
        planner = SimulationPlanner(
            target_rank=6,
            max_trials=2,
            seed=7,
            backend=backend,
            fault_policy=FaultPolicy.retrying(max_retries=2),
        )
        circ = random_brickwork_circuit(5, 4, seed=11)
        plan = planner.plan_circuit(circ, bitstring=[0] * 5, concrete=True)
        backend.configure_faults(
            injector=FaultInjector([FaultSpec("kill-worker", chunk=1)])
        )
        with planner:
            planner.execute_plan(plan)
        summary = plan.summary()
        assert "retries" in summary and "faults" in summary
        assert "recovery_seconds" in summary
        if plan.slicing.num_sliced and plan.num_subtasks > 1:
            assert summary["faults"] >= 1.0

    def test_sampler_accumulates_resilience_stats(self):
        from repro.execution import CorrelatedSampler

        circ = random_brickwork_circuit(5, 4, seed=11)
        backend = SharedMemoryProcessPoolBackend(max_workers=WORKERS)
        sampler = CorrelatedSampler(
            circ,
            open_qubits=(0, 1),
            target_rank=4,
            max_trials=2,
            seed=3,
            backend=backend,
            fault_policy=FaultPolicy.retrying(max_retries=2),
        )
        reference = CorrelatedSampler(
            circ, open_qubits=(0, 1), target_rank=4, max_trials=2, seed=3
        )
        with sampler:
            batch = sampler.compute_batch([0] * 5)
        clean = reference.compute_batch([0] * 5)
        np.testing.assert_array_equal(batch.amplitudes, clean.amplitudes)
        assert sampler.stats.retries == 0  # no injector: clean run

    def test_sampler_fault_arguments_require_backend(self):
        from repro.execution import CorrelatedSampler

        circ = random_brickwork_circuit(4, 2, seed=5)
        with pytest.raises(ValueError, match="backend"):
            CorrelatedSampler(
                circ, open_qubits=(0,), fault_policy=FaultPolicy.retrying()
            )


# ----------------------------------------------------------------------
# Property: fault-injected runs are bit-identical to clean serial runs
# ----------------------------------------------------------------------
_PROP_CASE = _case(num_qubits=5, depth=3, seed=29)
_PROP_SLICED = sorted(_PROP_CASE[0].inner_indices())[:3]
_PROP_SERIAL = SlicedExecutor(
    _PROP_CASE[0], _PROP_CASE[1], _PROP_SLICED, backend=SerialBackend()
).amplitude()


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    chunk_size=st.sampled_from([1, 2, None]),
    mode=st.sampled_from(["retry", "degrade"]),
    substrate=st.sampled_from(["process-pool", "threads"]),
)
def test_property_fault_injected_runs_match_clean_serial(
    seed, chunk_size, mode, substrate
):
    tn, tree = _PROP_CASE
    injector = FaultInjector.seeded(seed, num_chunks=4, num_faults=1)
    if substrate == "process-pool":
        backend = SharedMemoryProcessPoolBackend(
            max_workers=WORKERS, chunk_size=chunk_size
        )
    else:
        backend = ThreadPoolBackend(max_workers=WORKERS, chunk_size=chunk_size)
    policy = (
        FaultPolicy.retrying(max_retries=3, backoff_seconds=0.0)
        if mode == "retry"
        else FaultPolicy.degrading(max_retries=1, backoff_seconds=0.0)
    )
    executor = SlicedExecutor(
        tn,
        tree,
        _PROP_SLICED,
        backend=backend,
        fault_policy=policy,
        fault_injector=injector,
    )
    try:
        assert executor.amplitude() == _PROP_SERIAL
    finally:
        backend.close()
