"""Tests of the lifetime concept (Definition 1) and its structural properties."""

from __future__ import annotations

import math

import pytest

from repro.core import (
    compute_lifetimes,
    extract_stem,
    lifetime_contains,
    lifetime_is_contiguous_on_path,
    lifetime_lengths,
    lifetime_of,
    lifetimes_on_nodes,
    verify_halving_property,
)
from repro.tensornet import ContractionTree


def _chain_tree():
    leaf_indices = [{"i", "x"}, {"x", "y"}, {"y", "j"}]
    sizes = {"i": 2, "x": 2, "y": 2, "j": 2}
    return ContractionTree(
        leaf_indices=leaf_indices,
        index_sizes=sizes,
        ssa_path=[(0, 1), (3, 2)],
        output_indices={"i", "j"},
    )


class TestDefinition:
    def test_lifetime_matches_brute_force_on_chain(self):
        tree = _chain_tree()
        lifetimes = compute_lifetimes(tree)
        # x lives on leaves 0, 1 only (it is contracted at node 3)
        assert lifetimes["x"].nodes == frozenset({0, 1})
        # y lives on leaves 1, 2 and on the intermediate node 3
        assert lifetimes["y"].nodes == frozenset({1, 2, 3})
        # i is an output index: it lives on leaf 0 and every ancestor
        assert lifetimes["i"].nodes == frozenset({0, 3, 4})

    def test_lifetime_definition_exhaustive(self, grid_tree):
        lifetimes = compute_lifetimes(grid_tree)
        for edge, lt in list(lifetimes.items())[:40]:
            expected = frozenset(
                node for node in grid_tree.nodes() if edge in grid_tree.node_indices(node)
            )
            assert lt.nodes == expected, edge

    def test_internal_only_lifetime(self, grid_tree):
        lifetimes = compute_lifetimes(grid_tree, include_leaves=False)
        internal = frozenset(grid_tree.internal_nodes())
        for lt in lifetimes.values():
            assert lt.nodes <= internal

    def test_lifetime_of_single_edge(self, grid_tree):
        edge = sorted(grid_tree.all_indices())[0]
        lt = lifetime_of(grid_tree, edge)
        assert lt.edge == edge
        assert lt.length == len(lt.nodes)
        assert lt.internal_nodes <= lt.nodes

    def test_lengths_helper(self, grid_tree):
        lengths = lifetime_lengths(grid_tree)
        lifetimes = compute_lifetimes(grid_tree)
        for edge, length in lengths.items():
            assert length == lifetimes[edge].length

    def test_restricted_lifetimes(self, grid_tree, grid_stem):
        region = grid_stem.nodes
        restricted = lifetimes_on_nodes(grid_tree, region)
        full = compute_lifetimes(grid_tree)
        for edge, nodes in restricted.items():
            assert nodes == full[edge].nodes & frozenset(region)


class TestHalvingProperty:
    """Slicing an edge halves exactly the tensors in its lifetime."""

    def test_chain_tree(self):
        tree = _chain_tree()
        for edge in ("i", "x", "y", "j"):
            ok, _ = verify_halving_property(tree, edge)
            assert ok, edge

    def test_grid_tree_sample(self, grid_tree):
        for edge in sorted(grid_tree.all_indices())[::7]:
            ok, sizes = verify_halving_property(grid_tree, edge)
            assert ok, edge

    def test_contraction_cost_unchanged_inside_lifetime(self, grid_tree):
        # the time complexity of contractions whose index union contains the
        # sliced edge is unchanged; all others double (for w=2)
        edge = max(
            grid_tree.all_indices(),
            key=lambda e: len(lifetime_of(grid_tree, e).internal_nodes),
        )
        for node in grid_tree.internal_nodes():
            before = grid_tree.node_log2_flops(node)
            after = grid_tree.node_log2_flops(node, sliced={edge})
            if edge in grid_tree.contraction_indices(node):
                assert after == pytest.approx(before - 1.0)
            else:
                assert after == pytest.approx(before)


class TestRelations:
    def test_containment_relation(self, grid_tree):
        edges = sorted(grid_tree.all_indices())
        a, b = edges[0], edges[1]
        la, lb = lifetime_of(grid_tree, a), lifetime_of(grid_tree, b)
        assert lifetime_contains(grid_tree, a, b) == (lb.nodes <= la.nodes)
        # every lifetime contains itself
        assert lifetime_contains(grid_tree, a, a)

    def test_contiguity_on_stem(self, grid_tree, grid_stem):
        path = list(grid_stem.nodes)
        for edge in sorted(grid_stem.edges())[:40]:
            assert lifetime_is_contiguous_on_path(grid_tree, edge, path), edge

    def test_contiguity_trivially_true_for_absent_edge(self, grid_tree, grid_stem):
        assert lifetime_is_contiguous_on_path(grid_tree, "no-such-edge", list(grid_stem.nodes))


class TestOverheadSuperposition:
    """The Fig. 5 superposition rule: each sliced edge doubles the cost of the
    contractions outside its lifetime, independently of the other edges."""

    def test_two_edge_superposition(self, grid_tree):
        edges = sorted(
            grid_tree.all_indices(),
            key=lambda e: -len(lifetime_of(grid_tree, e).internal_nodes),
        )
        a, b = edges[0], edges[1]
        cost_none = grid_tree.total_cost(frozenset())
        expected = 0.0
        for node in grid_tree.internal_nodes():
            union = grid_tree.contraction_indices(node)
            multiplier = 1.0
            if a not in union:
                multiplier *= 2.0
            if b not in union:
                multiplier *= 2.0
            expected += multiplier * 2.0 ** grid_tree.node_log2_flops(node)
        assert grid_tree.total_cost({a, b}) == pytest.approx(expected, rel=1e-12)

    def test_edge_spanning_whole_tree_is_free(self):
        # an edge alive on every contraction causes no overhead: "i" sits on
        # leaf 0 and, being an output index, on both intermediates
        tree = _chain_tree()
        assert tree.slicing_overhead({"i"}) == pytest.approx(1.0)

    def test_edge_dying_early_causes_overhead(self):
        tree = _chain_tree()
        # x is contracted at the first step: the second contraction is redone
        assert tree.slicing_overhead({"x"}) > 1.0
