"""Tests of stem extraction and the stem complexity profile."""

from __future__ import annotations

import math

import pytest

from repro.core import SlicingCostModel, extract_stem, stem_profile, stem_slot_schedule
from repro.paths import GreedyOptimizer


class TestStemStructure:
    def test_stem_nodes_form_a_root_path(self, grid_tree, grid_stem):
        # the stem's contraction nodes must be a chain ending at the root
        assert grid_stem.steps, "stem must not be empty"
        assert grid_stem.nodes[-1] == grid_tree.root
        parents = grid_tree.parent_map()
        for lower, upper in zip(grid_stem.nodes, grid_stem.nodes[1:]):
            assert parents[lower] == upper

    def test_each_step_children_are_consistent(self, grid_tree, grid_stem):
        for i, step in enumerate(grid_stem.steps):
            children = grid_tree.children(step.node)
            assert set(children) == {step.stem_child, step.branch_child}
            if i == 0:
                assert step.stem_child == grid_stem.start_node
            else:
                assert step.stem_child == grid_stem.steps[i - 1].node

    def test_step_metadata_matches_tree(self, grid_tree, grid_stem):
        for step in grid_stem.steps:
            assert step.result_indices == grid_tree.node_indices(step.node)
            assert step.branch_indices == grid_tree.node_indices(step.branch_child)
            assert step.log2_flops == pytest.approx(grid_tree.node_log2_flops(step.node))
            assert step.rank == len(step.result_indices)

    def test_cost_fraction_bounds(self, grid_stem):
        fraction = grid_stem.cost_fraction()
        assert 0.0 < fraction <= 1.0

    def test_stem_contains_most_expensive_contraction(self, grid_tree, grid_stem):
        most_expensive = max(
            grid_tree.internal_nodes(), key=lambda n: grid_tree.node_log2_flops(n)
        )
        # the DP choice maximises path cost, which must include the single
        # most expensive node's cost fraction in almost all trees; check the
        # stem's max step cost is at least that node's cost
        stem_max = max(step.log2_flops for step in grid_stem.steps)
        assert stem_max == pytest.approx(grid_tree.node_log2_flops(most_expensive))

    def test_stem_max_rank_ge_tree_max_rank_when_on_stem(self, grid_tree, grid_stem):
        assert grid_stem.max_rank() <= grid_tree.max_rank()

    def test_edges_superset_of_step_indices(self, grid_stem):
        edges = grid_stem.edges()
        for step in grid_stem.steps:
            assert step.result_indices <= edges
            assert step.branch_indices <= edges


class TestStemAsTree:
    def test_caterpillar_tree_costs_match_steps(self, grid_stem):
        stem_tree = grid_stem.as_tree()
        assert stem_tree.num_leaves == grid_stem.length + 1
        # per-step contraction costs must be identical to the original stem's
        for position, node in enumerate(stem_tree.internal_nodes()):
            assert stem_tree.node_log2_flops(node) == pytest.approx(
                grid_stem.steps[position].log2_flops
            )

    def test_caterpillar_intermediates_match_stem_tensors(self, grid_stem):
        stem_tree = grid_stem.as_tree()
        for position, node in enumerate(stem_tree.internal_nodes()):
            assert stem_tree.node_indices(node) == grid_stem.steps[position].result_indices

    def test_cost_model_works_on_stem_tree(self, grid_stem):
        model = SlicingCostModel(grid_stem.as_tree())
        assert model.total_cost(frozenset()) == pytest.approx(grid_stem.cost(), rel=1e-12)


class TestStemProfile:
    def test_profile_without_slicing(self, grid_stem):
        profile = stem_profile(grid_stem)
        assert len(profile) == grid_stem.length
        for row in profile:
            assert row["log2_cost"] == pytest.approx(row["log2_cost_sliced"])
            assert row["log2_multiple"] == pytest.approx(0.0)

    def test_profile_with_slicing_multiplicities(self, grid_tree, grid_stem):
        edges = sorted(grid_stem.edges() & grid_tree.all_indices())[:3]
        sliced = frozenset(edges)
        profile = stem_profile(grid_stem, sliced)
        for position, row in enumerate(profile):
            union = grid_tree.contraction_indices(grid_stem.steps[position].node)
            covered = len(union & sliced)
            assert row["log2_multiple"] == pytest.approx(len(sliced) - covered)
            assert row["log2_cost_sliced"] == pytest.approx(row["log2_cost"] - covered)

    def test_profile_positions_are_sequential(self, grid_stem):
        profile = stem_profile(grid_stem)
        assert [row["position"] for row in profile] == list(range(grid_stem.length))


class TestStemOnSmallTree(object):
    def test_stem_of_two_leaf_tree(self, small_network):
        tree = GreedyOptimizer(seed=0).tree(small_network)
        stem = extract_stem(tree)
        assert stem.length >= 1
        assert stem.nodes[-1] == tree.root


class TestStemSlotSchedule:
    def test_schedule_covers_exactly_the_stem(self, grid_tree, grid_stem):
        schedule = stem_slot_schedule(grid_tree)
        assert set(schedule) == set(grid_stem.nodes)

    def test_slots_alternate_in_stem_order(self, grid_tree, grid_stem):
        schedule = stem_slot_schedule(grid_tree)
        slots = [schedule[node] for node in grid_stem.nodes]
        assert slots == [k % 2 for k in range(len(slots))]

    def test_consecutive_steps_consume_the_other_slot(self, grid_tree, grid_stem):
        # the safety argument: step k's stem operand sits in the slot that
        # step k+1 will NOT write, so two buffers suffice
        schedule = stem_slot_schedule(grid_tree)
        for prev, step in zip(grid_stem.steps, grid_stem.steps[1:]):
            assert step.stem_child == prev.node
            assert schedule[step.node] != schedule[prev.node]
