"""Property-based tests (hypothesis) of the core invariants.

These are the paper's load-bearing identities, checked over randomly
generated circuits, trees and slicing sets rather than hand-picked cases:

* a sliced contraction summed over all subtasks equals the unsliced value,
* slicing an edge halves exactly the tensors in its lifetime,
* Eq. 4 equals the per-subtask cost times the subtask count for any slicing
  set, and the overhead superposition rule of Fig. 5 holds,
* Algorithm 1 always satisfies the memory target and the SA refiner never
  regresses it,
* the reduced permutation map agrees with ``numpy.transpose`` for any
  permutation.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.circuits import amplitude, random_brickwork_circuit
from repro.core import (
    GreedySliceBaseline,
    LifetimeSliceFinder,
    PermutationSpec,
    ReducedPermutationMap,
    SimulatedAnnealingSliceRefiner,
    SlicingCostModel,
    compute_lifetimes,
    extract_stem,
)
from repro.execution import SlicedExecutor
from repro.paths import GreedyOptimizer
from repro.tensornet import ContractionTree, amplitude_network, simplify_network

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

circuit_strategy = st.tuples(
    st.integers(min_value=3, max_value=6),  # qubits
    st.integers(min_value=2, max_value=4),  # depth
    st.integers(min_value=0, max_value=1000),  # seed
)

perm_strategy = st.integers(min_value=2, max_value=7).flatmap(
    lambda n: st.permutations(list(range(n)))
)


def _planning_tree(seed: int, temperature: float = 0.5) -> ContractionTree:
    """A randomised contraction tree over the shared grid-like workload."""
    circ = random_brickwork_circuit(7, 5, seed=seed % 17)
    tn = amplitude_network(circ, [0] * 7, concrete=False)
    simplify_network(tn)
    return GreedyOptimizer(temperature=temperature, seed=seed).tree(tn)


# ---------------------------------------------------------------------------
# Numerical slicing invariant
# ---------------------------------------------------------------------------


class TestSlicedContractionProperty:
    @SETTINGS
    @given(params=circuit_strategy, num_sliced=st.integers(min_value=1, max_value=3))
    def test_sum_of_subtasks_equals_unsliced_amplitude(self, params, num_sliced):
        qubits, depth, seed = params
        circ = random_brickwork_circuit(qubits, depth, seed=seed)
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, size=qubits).tolist()
        tn = amplitude_network(circ, bits)
        simplify_network(tn)
        if tn.num_tensors < 2:
            return
        tree = GreedyOptimizer(seed=seed).tree(tn)
        inner = sorted(tn.inner_indices())
        if not inner:
            return
        picks = rng.choice(len(inner), size=min(num_sliced, len(inner)), replace=False)
        sliced = [inner[i] for i in picks]
        executor = SlicedExecutor(tn, tree, sliced)
        assert executor.amplitude() == pytest.approx(amplitude(circ, bits), abs=1e-8)


# ---------------------------------------------------------------------------
# Lifetime / cost-model invariants
# ---------------------------------------------------------------------------


class TestLifetimeProperties:
    @SETTINGS
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_slicing_halves_exactly_the_lifetime(self, seed):
        tree = _planning_tree(seed)
        edges = sorted(tree.all_indices())
        rng = np.random.default_rng(seed)
        edge = edges[int(rng.integers(len(edges)))]
        lifetime = compute_lifetimes(tree, edges=[edge])[edge]
        for node in tree.nodes():
            before = tree.node_log2_size(node)
            after = tree.node_log2_size(node, sliced={edge})
            if node in lifetime.nodes:
                assert after == pytest.approx(before - 1.0)
            else:
                assert after == pytest.approx(before)

    @SETTINGS
    @given(seed=st.integers(min_value=0, max_value=10_000), k=st.integers(min_value=1, max_value=5))
    def test_eq4_equals_subtask_count_times_per_subtask_cost(self, seed, k):
        tree = _planning_tree(seed)
        rng = np.random.default_rng(seed)
        edges = sorted(tree.all_indices())
        picks = rng.choice(len(edges), size=min(k, len(edges)), replace=False)
        sliced = frozenset(edges[i] for i in picks)
        model = SlicingCostModel(tree)
        assert model.total_cost(sliced) == pytest.approx(
            model.contraction_cost(sliced) * model.num_subtasks(sliced), rel=1e-9
        )
        assert model.total_cost(sliced) == pytest.approx(tree.total_cost(sliced), rel=1e-9)

    @SETTINGS
    @given(seed=st.integers(min_value=0, max_value=10_000), k=st.integers(min_value=1, max_value=4))
    def test_overhead_superposition_rule(self, seed, k):
        tree = _planning_tree(seed)
        rng = np.random.default_rng(seed + 1)
        edges = sorted(tree.all_indices())
        picks = rng.choice(len(edges), size=min(k, len(edges)), replace=False)
        sliced = frozenset(edges[i] for i in picks)
        expected = 0.0
        for node in tree.internal_nodes():
            union = tree.contraction_indices(node)
            missing = len(sliced) - len(sliced & union)
            expected += 2.0**missing * 2.0 ** tree.node_log2_flops(node)
        assert tree.total_cost(sliced) == pytest.approx(expected, rel=1e-9)

    @SETTINGS
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_adding_an_edge_never_lowers_total_cost(self, seed):
        tree = _planning_tree(seed)
        rng = np.random.default_rng(seed + 2)
        edges = sorted(tree.all_indices())
        base = frozenset(edges[i] for i in rng.choice(len(edges), size=2, replace=False))
        extra = edges[int(rng.integers(len(edges)))]
        assert tree.total_cost(base | {extra}) >= tree.total_cost(base) - 1e-9


# ---------------------------------------------------------------------------
# Slicer guarantees
# ---------------------------------------------------------------------------


class TestSlicerProperties:
    @SETTINGS
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        delta=st.integers(min_value=1, max_value=5),
    )
    def test_finder_always_satisfies_target(self, seed, delta):
        tree = _planning_tree(seed)
        target = max(tree.max_rank() - delta, 2)
        model = SlicingCostModel(tree)
        result = LifetimeSliceFinder(target).find(tree, cost_model=model)
        assert result.satisfies_target
        assert result.sliced <= frozenset(model.indices)

    @SETTINGS
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_refiner_never_regresses(self, seed):
        tree = _planning_tree(seed)
        target = max(tree.max_rank() - 3, 2)
        model = SlicingCostModel(tree)
        initial = LifetimeSliceFinder(target).find(tree, cost_model=model)
        refined = SimulatedAnnealingSliceRefiner(seed=seed).refine(
            tree, initial.sliced, target, cost_model=model
        )
        assert refined.satisfies_target
        assert refined.overhead <= initial.overhead + 1e-9

    @SETTINGS
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        delta=st.integers(min_value=1, max_value=4),
    )
    def test_baseline_always_satisfies_target(self, seed, delta):
        tree = _planning_tree(seed, temperature=0.8)
        target = max(tree.max_rank() - delta, 2)
        result = GreedySliceBaseline(target).find(tree)
        assert result.satisfies_target

    @SETTINGS
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_stem_is_a_parent_chain(self, seed):
        tree = _planning_tree(seed)
        stem = extract_stem(tree)
        parents = tree.parent_map()
        for lower, upper in zip(stem.nodes, stem.nodes[1:]):
            assert parents[lower] == upper
        assert stem.nodes[-1] == tree.root


# ---------------------------------------------------------------------------
# Permutation maps
# ---------------------------------------------------------------------------


class TestPermutationProperties:
    @SETTINGS
    @given(perm=perm_strategy, seed=st.integers(min_value=0, max_value=1000))
    def test_reduced_map_matches_numpy(self, perm, seed):
        shape = (2,) * len(perm)
        spec = PermutationSpec(perm=tuple(perm), shape=shape)
        rng = np.random.default_rng(seed)
        array = rng.normal(size=shape)
        assert np.allclose(
            ReducedPermutationMap(spec).permute(array), np.transpose(array, perm)
        )

    @SETTINGS
    @given(perm=perm_strategy)
    def test_reduction_factor_matches_fixed_blocks(self, perm):
        spec = PermutationSpec(perm=tuple(perm), shape=(2,) * len(perm))
        reduced = ReducedPermutationMap(spec)
        expected = 2.0 ** (spec.fixed_prefix + spec.fixed_suffix)
        assert reduced.reduction_factor == pytest.approx(expected)
