"""Distributed execution backend: real localhost workers over TCP sockets.

Every test here spawns actual ``repro.execution.worker`` processes (no
in-process shims), so the suite carries the ``distributed`` marker and CI
gives it its own job.  Coverage, per the acceptance criteria:

* bit-identity with :class:`SerialBackend` across worker counts, chunk
  sizes and batched sweeps — including adversarial arrival orders forced
  by a slow-worker delay injection (the late chunk still folds first);
* fault recovery: dropped connections and killed workers rebalance onto
  survivors under ``FaultPolicy.retrying``, persistent death degrades to
  the local substrate chain, chunk timeouts sever wedged links, and a
  broken session heals on the next run;
* session lifecycle: data-only mutations republish payloads without
  re-broadcasting the plan, axis-order mutations rebuild the cluster;
* spec parsing (``"distributed"`` / ``"distributed:host:port,..."``),
  device array-module rejection, the ``--listen`` worker topology, and
  the comms-aware calibration pipeline through
  :func:`measure_strong_scaling`.
"""

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.circuits import random_brickwork_circuit
from repro.costs import CalibratedCostModel, calibration_payload
from repro.execution import (
    ChunkTimeoutError,
    DistributedBackend,
    DistributedWorkerError,
    FaultError,
    FaultInjector,
    FaultPolicy,
    FaultSpec,
    MeasuredScalingPoint,
    SerialBackend,
    SlicedExecutor,
    measure_strong_scaling,
    resolve_backend,
    validate_execution_args,
)
from repro.execution.distributed import _worker_environment
from repro.paths import GreedyOptimizer
from repro.tensornet import amplitude_network, simplify_network

pytestmark = pytest.mark.distributed


def _case(num_qubits=6, depth=4, seed=13):
    circ = random_brickwork_circuit(num_qubits, depth, seed=seed)
    bits = [int(b) for b in np.random.default_rng(seed).integers(0, 2, num_qubits)]
    tn = amplitude_network(circ, bits)
    simplify_network(tn)
    tree = GreedyOptimizer(seed=1).tree(tn)
    return tn, tree


def _serial_value(tn, tree, sliced, **kwargs):
    return SlicedExecutor(
        tn, tree, sliced, backend=SerialBackend(), **kwargs
    ).amplitude()


@pytest.fixture(scope="module")
def case():
    tn, tree = _case()
    sliced = sorted(tn.inner_indices())[:4]
    return tn, tree, sliced


@pytest.fixture(scope="module")
def serial_value(case):
    tn, tree, sliced = case
    return _serial_value(tn, tree, sliced)


# ----------------------------------------------------------------------
# tentpole: ordered accumulation is bit-identical to serial
# ----------------------------------------------------------------------
class TestBitIdentity:
    @pytest.mark.parametrize(
        "num_workers,chunk_size",
        [(1, None), (2, 1), (2, 3), (3, None)],
    )
    def test_matches_serial_across_worker_counts_and_chunks(
        self, case, serial_value, num_workers, chunk_size
    ):
        tn, tree, sliced = case
        backend = DistributedBackend(num_workers=num_workers, chunk_size=chunk_size)
        try:
            executor = SlicedExecutor(tn, tree, sliced, backend=backend)
            with executor.session():
                assert executor.amplitude() == serial_value
                # warm second run reuses workers and payloads
                assert executor.amplitude() == serial_value
        finally:
            backend.close()

    def test_ephemeral_run_without_session(self, case, serial_value):
        tn, tree, sliced = case
        backend = DistributedBackend(num_workers=2)
        try:
            value = SlicedExecutor(tn, tree, sliced, backend=backend).amplitude()
        finally:
            backend.close()
        assert value == serial_value

    def test_batched_sweep_matches_serial(self, case):
        tn, tree, sliced = case
        batched = sliced[:2]
        serial = _serial_value(tn, tree, sliced, batch_indices=batched)
        backend = DistributedBackend(num_workers=2)
        try:
            executor = SlicedExecutor(
                tn, tree, sliced, backend=backend, batch_indices=batched
            )
            with executor.session():
                assert executor.amplitude() == serial
        finally:
            backend.close()

    def test_adversarial_arrival_order(self, case, serial_value):
        # delay the worker holding chunk 0 long enough that every other
        # chunk arrives first: ordered accumulation must still fold the
        # contributions in assignment order, bit-identical to serial
        tn, tree, sliced = case
        injector = FaultInjector(
            faults=[FaultSpec("delay-chunk", chunk=0, seconds=0.3)]
        )
        backend = DistributedBackend(num_workers=2, chunk_size=2)
        try:
            executor = SlicedExecutor(
                tn, tree, sliced, backend=backend, fault_injector=injector
            )
            with executor.session():
                assert executor.amplitude() == serial_value
        finally:
            backend.close()
        assert injector.fired == [(0, "delay-chunk")]

    def test_comms_counters_populated(self, case, serial_value):
        tn, tree, sliced = case
        backend = DistributedBackend(num_workers=2, chunk_size=1)
        try:
            executor = SlicedExecutor(tn, tree, sliced, backend=backend)
            with executor.session():
                assert executor.amplitude() == serial_value
            stats = executor.stats
        finally:
            backend.close()
        assert stats.chunk_roundtrips == 16
        assert stats.comms_bytes > 0
        assert stats.comms_seconds >= 0.0


# ----------------------------------------------------------------------
# tentpole: worker-death recovery through the resilience layer
# ----------------------------------------------------------------------
class TestFaultRecovery:
    def test_drop_connection_rebalances_onto_survivors(self, case, serial_value):
        tn, tree, sliced = case
        injector = FaultInjector(faults=[FaultSpec("drop-connection", chunk=1)])
        backend = DistributedBackend(num_workers=2, chunk_size=2)
        try:
            executor = SlicedExecutor(
                tn,
                tree,
                sliced,
                backend=backend,
                fault_policy=FaultPolicy.retrying(2, backoff_seconds=0.0),
                fault_injector=injector,
            )
            with executor.session() as session:
                assert executor.amplitude() == serial_value
                assert session.respawns == 0  # a survivor absorbed the chunk
            stats = executor.stats
        finally:
            backend.close()
        assert injector.fired == [(1, "drop-connection")]
        assert stats.faults >= 1
        assert stats.retries >= 1

    def test_kill_worker_fail_fast_then_session_heals(self, case, serial_value):
        tn, tree, sliced = case
        injector = FaultInjector(faults=[FaultSpec("kill-worker", chunk=0)])
        backend = DistributedBackend(num_workers=2, chunk_size=2)
        try:
            executor = SlicedExecutor(
                tn, tree, sliced, backend=backend, fault_injector=injector
            )
            with executor.session() as session:
                with pytest.raises(FaultError):
                    executor.amplitude()
                assert session.broken
                # the injector is exhausted; the next run relaunches the
                # dead cluster and completes cleanly
                assert executor.amplitude() == serial_value
                assert not session.broken
        finally:
            backend.close()

    def test_persistent_death_degrades_to_local_substrate(self, case, serial_value):
        tn, tree, sliced = case
        injector = FaultInjector(
            faults=[FaultSpec("kill-worker", chunk=0, times=50)]
        )
        backend = DistributedBackend(num_workers=2, chunk_size=4)
        try:
            executor = SlicedExecutor(
                tn,
                tree,
                sliced,
                backend=backend,
                fault_policy=FaultPolicy.degrading(1, backoff_seconds=0.0),
                fault_injector=injector,
            )
            with executor.session() as session:
                assert executor.amplitude() == serial_value
                assert session.respawns >= 1  # rebuild budget was spent first
            stats = executor.stats
        finally:
            backend.close()
        assert stats.degraded_to in ("threads", "serial")
        assert stats.faults >= 2

    def test_chunk_timeout_severs_wedged_link(self, case, serial_value):
        tn, tree, sliced = case
        injector = FaultInjector(
            faults=[FaultSpec("delay-chunk", chunk=0, seconds=2.5)]
        )
        backend = DistributedBackend(num_workers=2, chunk_size=4)
        try:
            executor = SlicedExecutor(
                tn,
                tree,
                sliced,
                backend=backend,
                fault_policy=FaultPolicy.retrying(
                    2, chunk_timeout_seconds=0.75, backoff_seconds=0.0
                ),
                fault_injector=injector,
            )
            with executor.session():
                assert executor.amplitude() == serial_value
            stats = executor.stats
        finally:
            backend.close()
        assert stats.faults >= 1

    def test_chunk_timeout_fail_fast_raises(self, case):
        tn, tree, sliced = case
        injector = FaultInjector(
            faults=[FaultSpec("delay-chunk", chunk=0, seconds=2.5)]
        )
        backend = DistributedBackend(num_workers=2, chunk_size=4)
        try:
            executor = SlicedExecutor(
                tn,
                tree,
                sliced,
                backend=backend,
                fault_policy=FaultPolicy(chunk_timeout_seconds=0.75),
                fault_injector=injector,
            )
            with pytest.raises(ChunkTimeoutError):
                executor.amplitude()
        finally:
            backend.close()

    def test_worker_error_reported_with_traceback(self, case, serial_value):
        tn, tree, sliced = case
        injector = FaultInjector(faults=[FaultSpec("poison-pickle", chunk=0)])
        backend = DistributedBackend(num_workers=2, chunk_size=4)
        try:
            executor = SlicedExecutor(
                tn, tree, sliced, backend=backend, fault_injector=injector
            )
            with pytest.raises(DistributedWorkerError) as excinfo:
                executor.amplitude()
        finally:
            backend.close()
        assert "UnpicklingError" in str(excinfo.value)
        assert excinfo.value.worker_id >= 0

    def test_worker_error_retried_against_chunk_budget(self, case, serial_value):
        tn, tree, sliced = case
        injector = FaultInjector(faults=[FaultSpec("poison-pickle", chunk=0)])
        backend = DistributedBackend(num_workers=2, chunk_size=4)
        try:
            executor = SlicedExecutor(
                tn,
                tree,
                sliced,
                backend=backend,
                fault_policy=FaultPolicy.retrying(2, backoff_seconds=0.0),
                fault_injector=injector,
            )
            with executor.session():
                assert executor.amplitude() == serial_value
            stats = executor.stats
        finally:
            backend.close()
        assert stats.faults >= 1
        assert stats.retries >= 1


# ----------------------------------------------------------------------
# tentpole: remote session publication and invalidation
# ----------------------------------------------------------------------
class TestRemoteSession:
    def test_data_only_mutation_republishes_without_plan_rebroadcast(self):
        tn, tree = _case()
        sliced = sorted(tn.inner_indices())[:4]
        backend = DistributedBackend(num_workers=2)
        try:
            executor = SlicedExecutor(tn, tree, sliced, backend=backend)
            with executor.session() as session:
                first = executor.amplitude()
                assert first == _serial_value(tn, tree, sliced)
                assert session.plan_broadcasts == 1
                assert session.data_publications == 1
                launches = session.worker_launches
                tid = tn.tensor_ids[0]
                tensor = tn.tensor(tid)
                tn.replace_tensor(
                    tid, tensor.with_data(tensor.require_data() * 2.0)
                )
                second = executor.amplitude()
                assert second == _serial_value(tn, tree, sliced)
                assert second != first
                # the payload travelled again; the plan and workers did not
                assert session.plan_broadcasts == 1
                assert session.data_publications == 2
                assert session.worker_launches == launches
        finally:
            backend.close()

    def test_axis_order_mutation_rebuilds_cluster(self):
        tn, tree = _case()
        sliced = sorted(tn.inner_indices())[:4]
        backend = DistributedBackend(num_workers=2)
        try:
            executor = SlicedExecutor(tn, tree, sliced, backend=backend)
            with executor.session() as session:
                first = executor.amplitude()
                assert first == _serial_value(tn, tree, sliced)
                launches = session.worker_launches
                tid = tn.tensor_ids[0]
                tensor = tn.tensor(tid)
                tn.replace_tensor(
                    tid, tensor.transposed(tuple(reversed(tensor.indices)))
                )
                second = executor.amplitude()
                assert second == _serial_value(tn, tree, sliced)
                # every published layout was invalid: fresh workers, fresh
                # plan broadcast, fresh payload
                assert session.worker_launches > launches
                assert session.plan_broadcasts == 2
                assert session.data_publications == 2
        finally:
            backend.close()

    def test_closed_session_falls_back_to_ephemeral(self, case, serial_value):
        tn, tree, sliced = case
        backend = DistributedBackend(num_workers=2)
        executor = SlicedExecutor(tn, tree, sliced, backend=backend)
        with executor.session():
            assert executor.amplitude() == serial_value
        backend.close()
        # no session open: run_subtasks brings up a scratch cluster and
        # tears it down again
        try:
            assert executor.amplitude() == serial_value
        finally:
            backend.close()


# ----------------------------------------------------------------------
# satellite: backend specs and argument validation
# ----------------------------------------------------------------------
class TestSpecsAndValidation:
    def test_resolve_backend_distributed_spec(self):
        backend = resolve_backend("distributed")
        assert isinstance(backend, DistributedBackend)
        assert backend.addresses is None
        assert backend.num_workers >= 2

    def test_resolve_backend_address_spec(self):
        backend = resolve_backend("distributed:hostA:1234,hostB:9")
        assert isinstance(backend, DistributedBackend)
        assert backend.addresses == [("hostA", 1234), ("hostB", 9)]
        assert backend.num_workers == 2

    @pytest.mark.parametrize(
        "spec", ["magic", "distributed:hostonly", "distributed:host:notaport"]
    )
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            resolve_backend(spec)

    def test_validate_execution_args_accepts_specs(self):
        validate_execution_args("compiled", "distributed")
        with pytest.raises(ValueError):
            validate_execution_args("compiled", "magic")

    def test_conflicting_worker_count_and_addresses(self):
        with pytest.raises(ValueError, match="conflicting"):
            DistributedBackend(num_workers=3, addresses=["hostA:1", "hostB:2"])
        with pytest.raises(ValueError, match="empty"):
            DistributedBackend(addresses=[])

    def test_device_module_rejected_on_distributed(self):
        class FakeDeviceModule:
            name = "cupy"
            is_host = False

        module = FakeDeviceModule()
        with pytest.raises(ValueError, match="DistributedBackend"):
            validate_execution_args(
                "compiled",
                DistributedBackend(num_workers=2),
                array_module=module,
            )
        # the same rejection fires on the string spec path
        with pytest.raises(ValueError, match="DistributedBackend"):
            validate_execution_args("compiled", "distributed", array_module=module)

    def test_unknown_transport_rejected(self):
        backend = DistributedBackend(num_workers=2, transport="carrier-pigeon")
        with pytest.raises(ValueError, match="transport"):
            backend._make_transport()


# ----------------------------------------------------------------------
# satellite: pre-started listener workers (the multi-node topology)
# ----------------------------------------------------------------------
class TestListenTopology:
    def test_listener_worker_end_to_end(self, case, serial_value):
        tn, tree, sliced = case
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.execution.worker",
             "--listen", "127.0.0.1:0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            env=_worker_environment(),
            text=True,
        )
        try:
            line = proc.stdout.readline().split()
            assert line[0] == "LISTENING"
            host, port = line[1], int(line[2])
            backend = DistributedBackend(addresses=[f"{host}:{port}"])
            try:
                assert backend.num_workers == 1
                executor = SlicedExecutor(tn, tree, sliced, backend=backend)
                with executor.session():
                    assert executor.amplitude() == serial_value
            finally:
                backend.close()
            # the listener survives the session and re-accepts: a second
            # coordinator reuses the same long-lived node
            backend = DistributedBackend(addresses=[(host, port)])
            try:
                value = SlicedExecutor(
                    tn, tree, sliced, backend=backend
                ).amplitude()
                assert value == serial_value
            finally:
                backend.close()
        finally:
            proc.terminate()
            proc.wait(timeout=10)
            proc.stdout.close()


# ----------------------------------------------------------------------
# satellite: comms-aware calibration and measured strong scaling
# ----------------------------------------------------------------------
class TestCalibrationAndScaling:
    def test_calibration_record_carries_comms_terms(self, case, serial_value):
        tn, tree, sliced = case
        backend = DistributedBackend(num_workers=2, chunk_size=1)
        try:
            executor = SlicedExecutor(tn, tree, sliced, backend=backend)
            with executor.session():
                # warm the invariant cache so the record's samples carry
                # the dependent-flops label the fit expects
                assert executor.amplitude() == serial_value
                executor.stats = type(executor.stats)()
                assert executor.amplitude() == serial_value
            record = executor.calibration_record()
            stats = executor.stats
        finally:
            backend.close()
        assert record.key == "distributed"
        assert record.payload_bytes_per_subtask > 0.0
        assert record.comms_seconds_per_subtask >= 0.0
        # the fitted model keeps the comms constant and prices it into
        # every per-subtask prediction
        model = CalibratedCostModel.fit([record])
        coeff = model.coefficients["distributed"]
        assert coeff.comms_seconds_per_subtask == pytest.approx(
            record.comms_seconds_per_subtask
        )
        assert model.subtask_seconds(
            tree, frozenset(sliced), backend="distributed"
        ) >= coeff.comms_seconds_per_subtask

        # the bench-JSON round trip preserves the comms terms
        payload = {
            "calibration": calibration_payload({"distributed": stats}, tree, sliced)
        }
        entry = payload["calibration"]["backends"]["distributed"]
        assert entry["comms_seconds_per_subtask"] >= 0.0
        assert entry["payload_bytes_per_subtask"] > 0.0
        round_tripped = CalibratedCostModel.from_bench_json(payload)
        assert round_tripped.coefficients[
            "distributed"
        ].payload_bytes_per_subtask == pytest.approx(
            entry["payload_bytes_per_subtask"]
        )

    def test_serial_record_defaults_to_zero_comms(self, case, serial_value):
        tn, tree, sliced = case
        executor = SlicedExecutor(tn, tree, sliced, backend=SerialBackend())
        assert executor.amplitude() == serial_value
        record = executor.calibration_record()
        assert record.comms_seconds_per_subtask == 0.0
        assert record.payload_bytes_per_subtask == 0.0

    def test_measure_strong_scaling_smoke(self, case):
        tn, tree, sliced = case
        points = measure_strong_scaling(
            tn, tree, sliced, worker_counts=(1, 2), repeats=1
        )
        assert [p.num_workers for p in points] == [1, 2]
        for point in points:
            assert isinstance(point, MeasuredScalingPoint)
            assert point.num_subtasks == 16
            assert point.elapsed_seconds > 0.0
            assert point.predicted_seconds > 0.0
            assert point.speedup > 0.0
            assert 0.0 < point.efficiency
            assert point.relative_error >= 0.0
        # the sweep verifies bit-identity against serial internally; no
        # timing assertions here (single-core CI boxes cannot gate
        # speedup — benchmarks/check_distributed_scaling.py does, on the
        # multi-worker trajectory appended by the CI leg)
