"""Durable checkpointed execution: crash-safe chunk ledger and resume.

The durability contract under test: arm a run with a
:class:`CheckpointStore` (``resume=`` or ``FaultPolicy.checkpoint_dir``),
kill the coordinator at *any* harvest ordinal — in-process via the
``"kill-coordinator"`` fault kind, or for real in a subprocess
(``tests/checkpoint_harness.py``) — and the next run with the same
content fingerprint completes only the missing ordered slots, returning
a result **bit-identical** to an uninterrupted run on every backend ×
stepwise/fused combination.  Resilience counters accumulate across the
restarts, a fingerprint mismatch invalidates the ledger, and the
end-to-end payload checksums (the ``"corrupt-result"`` kind) keep a
poisoned chunk out of both the result and the ledger.  The conftest
audit additionally asserts no test leaves an orphaned checkpoint
``*.tmp``/``*.lock`` behind.
"""

from __future__ import annotations

import os
import pickle
import subprocess
import sys
import tempfile
import shutil
import zlib

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.circuits import random_brickwork_circuit
from repro.execution import (
    CheckpointError,
    CheckpointStore,
    ChunkIntegrityError,
    DistributedBackend,
    FaultInjector,
    FaultPolicy,
    FaultSpec,
    InjectedCoordinatorDeath,
    RecoveryExhaustedError,
    SerialBackend,
    SharedMemoryProcessPoolBackend,
    SlicedExecutor,
    ThreadPoolBackend,
    job_fingerprint,
)
from repro.execution.checkpoint import payload_checksums, verify_payload
from repro.paths import GreedyOptimizer
from repro.tensornet import amplitude_network, simplify_network

pytestmark = [pytest.mark.faults, pytest.mark.checkpoint]

WORKERS = 2
HARNESS = os.path.join(os.path.dirname(__file__), "checkpoint_harness.py")
SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")


def _case(num_qubits=6, depth=4, seed=13):
    circ = random_brickwork_circuit(num_qubits, depth, seed=seed)
    bits = [int(b) for b in np.random.default_rng(seed).integers(0, 2, num_qubits)]
    tn = amplitude_network(circ, bits)
    simplify_network(tn)
    tree = GreedyOptimizer(seed=1).tree(tn)
    return tn, tree


def _sliced(tn):
    return sorted(tn.inner_indices())[:4]


def _backend(kind):
    if kind == "serial":
        return SerialBackend()
    if kind == "threads":
        return ThreadPoolBackend(WORKERS)
    if kind == "pool":
        # default chunking: the configured chunk_size is part of the job
        # fingerprint, so keeping it None lets one ledger resume across
        # all three backends
        return SharedMemoryProcessPoolBackend(WORKERS)
    raise AssertionError(kind)


@pytest.fixture(scope="module")
def case():
    return _case()


@pytest.fixture(scope="module")
def serial_value(case):
    tn, tree = case
    return SlicedExecutor(tn, tree, _sliced(tn), backend=SerialBackend()).amplitude()


# ----------------------------------------------------------------------
# Payload integrity primitives
# ----------------------------------------------------------------------
class TestPayloadIntegrity:
    def test_checksums_round_trip(self):
        arrays = [np.arange(6, dtype=np.complex128), np.zeros((), np.complex128)]
        checksums = payload_checksums(arrays)
        assert verify_payload(arrays, checksums)

    def test_none_checksums_verify_trivially(self):
        assert verify_payload([np.ones(3)], None)

    def test_single_bit_flip_is_detected(self):
        arrays = [np.arange(6, dtype=np.complex128)]
        checksums = payload_checksums(arrays)
        raw = arrays[0].view(np.uint8)
        raw[17] ^= 1
        assert not verify_payload(arrays, checksums)

    def test_length_mismatch_fails(self):
        arrays = [np.ones(2), np.ones(2)]
        assert not verify_payload(arrays, payload_checksums(arrays)[:1])


# ----------------------------------------------------------------------
# Store and job mechanics
# ----------------------------------------------------------------------
class TestCheckpointStore:
    def test_unwritable_root_fails_fast(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        with pytest.raises(CheckpointError):
            CheckpointStore(blocker / "store")

    def test_policy_checkpoint_dir_fails_fast_at_run(self, case, tmp_path):
        tn, tree = case
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        policy = FaultPolicy.retrying(checkpoint_dir=str(blocker / "store"))
        executor = SlicedExecutor(
            tn, tree, _sliced(tn), backend=SerialBackend(), fault_policy=policy
        )
        with pytest.raises(CheckpointError):
            executor.run()

    def test_checkpoint_every_validation(self):
        with pytest.raises(ValueError):
            FaultPolicy(checkpoint_every=0)

    def test_record_flush_reload_round_trip(self, tmp_path):
        store = CheckpointStore(tmp_path / "store")
        fingerprint = "ab" * 32
        arrays = {
            0: np.arange(4, dtype=np.complex128).reshape(2, 2),
            2: np.array(3.5 - 1j, dtype=np.complex128),  # 0-d must survive
        }
        job = store.job(fingerprint, num_slots=4)
        for position, array in arrays.items():
            job.record(position, array)
        job.close()
        resumed = store.job(fingerprint, num_slots=4)
        assert sorted(resumed.loaded) == [0, 2]
        for position, array in arrays.items():
            assert resumed.loaded[position].shape == array.shape
            assert resumed.loaded[position].dtype == array.dtype
            np.testing.assert_array_equal(resumed.loaded[position], array)
        resumed.complete()
        assert store.jobs() == []

    def test_complete_retires_the_ledger(self, tmp_path):
        store = CheckpointStore(tmp_path / "store")
        job = store.job("cd" * 32, num_slots=2)
        job.record(0, np.ones(2))
        job.complete()
        assert store.jobs() == []
        assert not (store.root / ("cd" * 32)).exists()

    def test_checkpoint_every_buffers_records(self, tmp_path):
        store = CheckpointStore(tmp_path / "store")
        job = store.job("ef" * 32, num_slots=8, every=3)
        slots_dir = store.root / ("ef" * 32) / "slots"
        job.record(0, np.ones(1))
        job.record(1, np.ones(1))
        assert len(list(slots_dir.glob("*.slot"))) == 0  # still buffered
        job.record(2, np.ones(1))
        assert len(list(slots_dir.glob("*.slot"))) == 3  # batch flushed
        job.close()  # close flushes the (empty) tail and unlocks
        resumed = store.job("ef" * 32, num_slots=8, every=3)
        assert sorted(resumed.loaded) == [0, 1, 2]
        resumed.complete()

    def test_torn_tmp_file_is_swept_on_attach(self, tmp_path):
        store = CheckpointStore(tmp_path / "store")
        fingerprint = "01" * 32
        job = store.job(fingerprint, num_slots=2)
        job.record(0, np.ones(3))
        job.close()
        torn = store.root / fingerprint / "slots" / "00000001.slot.tmp"
        torn.write_bytes(b"half-written garbage")
        resumed = store.job(fingerprint, num_slots=2)
        assert not torn.exists()
        assert sorted(resumed.loaded) == [0]
        resumed.complete()

    def test_corrupt_slot_record_is_dropped(self, tmp_path):
        store = CheckpointStore(tmp_path / "store")
        fingerprint = "23" * 32
        job = store.job(fingerprint, num_slots=2)
        job.record(0, np.ones(3))
        job.record(1, np.full(3, 2.0))
        job.close()
        victim = store.root / fingerprint / "slots" / "00000001.slot"
        record = pickle.loads(victim.read_bytes())
        record["data"] = record["data"][:-1] + bytes([record["data"][-1] ^ 1])
        assert zlib.crc32(record["data"]) != record["crc"]
        victim.write_bytes(pickle.dumps(record))
        resumed = store.job(fingerprint, num_slots=2)
        assert sorted(resumed.loaded) == [0]  # bit-rotted slot re-runs
        assert not victim.exists()
        resumed.complete()

    def test_manifest_mismatch_invalidates_ledger(self, tmp_path):
        store = CheckpointStore(tmp_path / "store")
        job = store.job("45" * 32, num_slots=4)
        job.record(0, np.ones(2))
        job.close()
        # the same directory now claims a different run shape
        resumed = store.job("45" * 32, num_slots=8)
        assert resumed.loaded == {}
        resumed.complete()

    def test_live_foreign_lock_raises(self, tmp_path):
        store = CheckpointStore(tmp_path / "store")
        fingerprint = "67" * 32
        job = store.job(fingerprint, num_slots=2)
        job.close()
        lock = store.root / fingerprint / "job.lock"
        lock.write_text("1")  # pid 1 is always alive and never us
        with pytest.raises(CheckpointError, match="locked by live coordinator"):
            store.job(fingerprint, num_slots=2)
        lock.unlink()
        store.job(fingerprint, num_slots=2).complete()

    def test_dead_coordinator_lock_is_stolen(self, tmp_path):
        store = CheckpointStore(tmp_path / "store")
        fingerprint = "89" * 32
        job = store.job(fingerprint, num_slots=2)
        job.record(0, np.ones(2))
        job.close()
        proc = subprocess.Popen([sys.executable, "-c", "pass"])
        proc.wait()
        lock = store.root / fingerprint / "job.lock"
        lock.write_text(str(proc.pid))  # a pid that is provably dead
        resumed = store.job(fingerprint, num_slots=2)
        assert sorted(resumed.loaded) == [0]
        resumed.complete()

    def test_context_manager_completes_on_success_keeps_on_error(self, tmp_path):
        store = CheckpointStore(tmp_path / "store")
        fingerprint = "ab" * 32
        with pytest.raises(RuntimeError, match="boom"):
            with store.job(fingerprint, num_slots=2) as job:
                job.record(0, np.ones(2))
                raise RuntimeError("boom")
        assert store.jobs() == [fingerprint]  # kept for the resume
        with store.job(fingerprint, num_slots=2) as job:
            assert sorted(job.loaded) == [0]
        assert store.jobs() == []  # clean exit retires it


class TestJobFingerprint:
    def test_deterministic_and_content_sensitive(self, case):
        tn, tree = case
        sliced = _sliced(tn)
        assignments = [dict(zip(sliced, values)) for values in [(0, 0, 0, 0), (1, 0, 0, 0)]]
        base = job_fingerprint(tn, tree, sliced, assignments)
        assert base == job_fingerprint(tn, tree, sliced, assignments)
        # the schedule is part of the key: a slot index must keep its meaning
        assert base != job_fingerprint(tn, tree, sliced, assignments[::-1])
        # so are the policy's recovery shape and the chunking
        assert base != job_fingerprint(
            tn, tree, sliced, assignments, policy=FaultPolicy.retrying()
        )
        assert base != job_fingerprint(tn, tree, sliced, assignments, chunk_size=2)
        assert base != job_fingerprint(
            tn, tree, sliced, assignments, sum_batch_axes=1
        )

    def test_leaf_data_is_part_of_the_key(self, case):
        tn, tree = case
        other, _ = _case(seed=14)
        sliced = _sliced(tn)
        assignments = [dict(zip(sliced, (0, 0, 0, 0)))]
        assert job_fingerprint(tn, tree, sliced, assignments) != job_fingerprint(
            other, tree, sliced, assignments
        )


# ----------------------------------------------------------------------
# Corrupt-result: checksums detect, retry heals, the ledger stays clean
# ----------------------------------------------------------------------
class TestCorruptResult:
    @pytest.mark.parametrize("kind", ["threads", "pool"])
    def test_retry_heals_bit_identically(self, case, serial_value, kind):
        tn, tree = case
        injector = FaultInjector([FaultSpec("corrupt-result", chunk=0, seconds=11)])
        executor = SlicedExecutor(
            tn,
            tree,
            _sliced(tn),
            backend=_backend(kind),
            fault_policy=FaultPolicy.retrying(),
            fault_injector=injector,
        )
        assert executor.amplitude() == serial_value
        assert executor.stats.retries >= 1
        assert executor.stats.faults >= 1
        assert injector.exhausted

    def test_fail_fast_raises_integrity_error(self, case):
        tn, tree = case
        injector = FaultInjector([FaultSpec("corrupt-result", chunk=0, seconds=3)])
        executor = SlicedExecutor(
            tn,
            tree,
            _sliced(tn),
            backend=ThreadPoolBackend(WORKERS),
            fault_policy=FaultPolicy.fail_fast(),
            fault_injector=injector,
        )
        with pytest.raises(ChunkIntegrityError):
            executor.run()

    def test_persistent_corruption_exhausts_the_budget(self, case):
        tn, tree = case
        injector = FaultInjector(
            [FaultSpec("corrupt-result", chunk=0, seconds=3, times=50)]
        )
        executor = SlicedExecutor(
            tn,
            tree,
            _sliced(tn),
            backend=ThreadPoolBackend(WORKERS),
            fault_policy=FaultPolicy.retrying(max_retries=1),
            fault_injector=injector,
        )
        with pytest.raises(RecoveryExhaustedError):
            executor.run()

    def test_poisoned_slot_is_never_persisted(self, case, serial_value, tmp_path):
        tn, tree = case
        store = CheckpointStore(tmp_path / "store")
        injector = FaultInjector(
            [
                FaultSpec("corrupt-result", chunk=0, seconds=23),
                FaultSpec("kill-coordinator", chunk=3),
            ]
        )
        executor = SlicedExecutor(
            tn,
            tree,
            _sliced(tn),
            backend=ThreadPoolBackend(WORKERS),
            fault_policy=FaultPolicy.retrying(),
            fault_injector=injector,
        )
        with pytest.raises(InjectedCoordinatorDeath):
            executor.run(resume=store)
        # every slot the interrupted run persisted matches the honest
        # serial value of its position — the corrupted payload never
        # reached the ledger
        [fingerprint] = store.jobs()
        probe = SlicedExecutor(tn, tree, _sliced(tn), backend=SerialBackend())
        job = store.job(fingerprint, num_slots=probe.num_subtasks)
        assert job.loaded  # the kill fired after at least one flush
        for position, array in job.loaded.items():
            honest = probe.amplitude([position])
            assert complex(array.reshape(())) == honest
        job.close()
        # and the resumed run still lands on the exact serial value
        resumed = SlicedExecutor(
            tn,
            tree,
            _sliced(tn),
            backend=ThreadPoolBackend(WORKERS),
            fault_policy=FaultPolicy.retrying(),
        )
        assert resumed.amplitude(resume=store) == serial_value


# ----------------------------------------------------------------------
# Resume bit-identity
# ----------------------------------------------------------------------
class TestResume:
    def test_uninterrupted_armed_run_matches_and_retires(
        self, case, serial_value, tmp_path
    ):
        tn, tree = case
        store = CheckpointStore(tmp_path / "store")
        executor = SlicedExecutor(tn, tree, _sliced(tn), backend=SerialBackend())
        assert executor.amplitude(resume=store) == serial_value
        assert executor.stats.checkpointed_slots == executor.num_subtasks
        assert store.jobs() == []

    def test_every_serial_ordinal_resumes_bit_identically(
        self, case, serial_value, tmp_path
    ):
        tn, tree = case
        sliced = _sliced(tn)
        store = CheckpointStore(tmp_path / "store")
        num = SlicedExecutor(tn, tree, sliced, backend=SerialBackend()).num_subtasks
        for ordinal in range(num):
            injector = FaultInjector([FaultSpec("kill-coordinator", chunk=ordinal)])
            interrupted = SlicedExecutor(
                tn,
                tree,
                sliced,
                backend=SerialBackend(),
                fault_policy=FaultPolicy.retrying(),
                fault_injector=injector,
            )
            with pytest.raises(InjectedCoordinatorDeath):
                interrupted.run(resume=store)
            resumed = SlicedExecutor(
                tn,
                tree,
                sliced,
                backend=SerialBackend(),
                fault_policy=FaultPolicy.retrying(),
            )
            assert resumed.amplitude(resume=store) == serial_value
            assert resumed.stats.resumed_slots == ordinal + 1
            assert store.jobs() == []

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        ordinal=st.integers(min_value=0, max_value=5),
        kind=st.sampled_from(["serial", "threads", "pool"]),
        fused=st.booleans(),
    )
    def test_resume_bit_identity_property(self, case, serial_value, ordinal, kind, fused):
        """Kill at a drawn harvest ordinal on a drawn backend × engine —
        the resumed amplitude is bitwise the serial reference."""
        tn, tree = case
        sliced = _sliced(tn)
        root = tempfile.mkdtemp(prefix="ckpt-prop-")
        try:
            store = CheckpointStore(root)
            injector = FaultInjector([FaultSpec("kill-coordinator", chunk=ordinal)])
            interrupted = SlicedExecutor(
                tn,
                tree,
                sliced,
                backend=_backend(kind),
                fused=fused,
                fault_policy=FaultPolicy.retrying(),
                fault_injector=injector,
            )
            with pytest.raises(InjectedCoordinatorDeath):
                interrupted.run(resume=store)
            # resume on a *different* backend/engine: the ledger is keyed
            # by content, not by how the slots were computed
            resume_kind = {"serial": "threads", "threads": "pool", "pool": "serial"}[
                kind
            ]
            resumed = SlicedExecutor(
                tn,
                tree,
                sliced,
                backend=_backend(resume_kind),
                fused=not fused,
                fault_policy=FaultPolicy.retrying(),
            )
            assert resumed.amplitude(resume=store) == serial_value
            assert resumed.stats.resumed_slots >= 1
            assert store.jobs() == []
        finally:
            shutil.rmtree(root, ignore_errors=True)

    def test_batched_sweep_resumes_bit_identically(self, case, tmp_path):
        tn, tree = case
        sliced = _sliced(tn)
        batch = sliced[:2]
        store = CheckpointStore(tmp_path / "store")
        clean = SlicedExecutor(
            tn, tree, sliced, backend=SerialBackend(), batch_indices=batch
        ).amplitude()
        injector = FaultInjector([FaultSpec("kill-coordinator", chunk=1)])
        interrupted = SlicedExecutor(
            tn,
            tree,
            sliced,
            backend=SerialBackend(),
            batch_indices=batch,
            fault_policy=FaultPolicy.retrying(),
            fault_injector=injector,
        )
        with pytest.raises(InjectedCoordinatorDeath):
            interrupted.run(resume=store)
        resumed = SlicedExecutor(
            tn,
            tree,
            sliced,
            backend=SerialBackend(),
            batch_indices=batch,
            fault_policy=FaultPolicy.retrying(),
        )
        result = resumed.run(resume=store)
        assert complex(result.require_data().reshape(())) == clean
        assert resumed.stats.resumed_slots == 2
        assert store.jobs() == []

    def test_stats_accumulate_across_restarts(self, case, serial_value, tmp_path):
        tn, tree = case
        store = CheckpointStore(tmp_path / "store")
        # the corrupted first chunk fails its checksum in wave 1 and is
        # retried in wave 2; harvest ordinal 7 is that retried chunk (the
        # 7 clean chunks consumed ordinals 0-6), so the coordinator dies
        # right after the retry's slots — and the bumped retry counters —
        # became durable
        injector = FaultInjector(
            [
                FaultSpec("corrupt-result", chunk=0, seconds=7),
                FaultSpec("kill-coordinator", chunk=7),
            ]
        )
        interrupted = SlicedExecutor(
            tn,
            tree,
            _sliced(tn),
            backend=ThreadPoolBackend(WORKERS),
            fault_policy=FaultPolicy.retrying(),
            fault_injector=injector,
        )
        with pytest.raises(InjectedCoordinatorDeath):
            interrupted.run(resume=store)
        assert interrupted.stats.retries >= 1
        resumed = SlicedExecutor(
            tn,
            tree,
            _sliced(tn),
            backend=ThreadPoolBackend(WORKERS),
            fault_policy=FaultPolicy.retrying(),
        )
        assert resumed.amplitude(resume=store) == serial_value
        # the fresh executor faulted zero times itself: everything it
        # reports was merged in from the interrupted run's stats.json
        assert resumed.stats.retries >= interrupted.stats.retries
        assert resumed.stats.faults >= interrupted.stats.faults
        assert resumed.stats.recovery_seconds > 0.0

    def test_fingerprint_mismatch_invalidates_ledger(self, case, tmp_path):
        tn, tree = case
        sliced = _sliced(tn)
        store = CheckpointStore(tmp_path / "store")
        injector = FaultInjector([FaultSpec("kill-coordinator", chunk=4)])
        interrupted = SlicedExecutor(
            tn,
            tree,
            sliced,
            backend=SerialBackend(),
            fault_policy=FaultPolicy.retrying(),
            fault_injector=injector,
        )
        with pytest.raises(InjectedCoordinatorDeath):
            interrupted.run(resume=store)
        assert len(store.jobs()) == 1
        # a different circuit: same shape of run, different content
        other_tn, other_tree = _case(seed=14)
        other_ref = SlicedExecutor(
            other_tn, other_tree, _sliced(other_tn), backend=SerialBackend()
        ).amplitude()
        fresh = SlicedExecutor(
            other_tn,
            other_tree,
            _sliced(other_tn),
            backend=SerialBackend(),
            fault_policy=FaultPolicy.retrying(),
        )
        assert fresh.amplitude(resume=store) == other_ref
        assert fresh.stats.resumed_slots == 0  # nothing was trusted

    def test_reference_mode_rejects_resume(self, case, tmp_path):
        tn, tree = case
        executor = SlicedExecutor(tn, tree, _sliced(tn), mode="reference")
        with pytest.raises(ValueError, match="compiled mode"):
            executor.run(resume=str(tmp_path / "store"))


# ----------------------------------------------------------------------
# The real thing: coordinator death in a subprocess, resume in a fresh one
# ----------------------------------------------------------------------
def _run_harness(store_root, backend, kill):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, HARNESS, str(store_root), backend, kill],
        capture_output=True,
        text=True,
        env=env,
        timeout=240,
    )


def _parse_result(stdout):
    for line in stdout.splitlines():
        if line.startswith("RESULT "):
            return complex(line[len("RESULT ") :])
    raise AssertionError(f"no RESULT line in harness output:\n{stdout}")


class TestCoordinatorCrashEndToEnd:
    @pytest.mark.parametrize("kill_ordinal", [0, 3])
    def test_pool_coordinator_crash_resumes_bit_identically(
        self, serial_value, tmp_path, kill_ordinal
    ):
        store_root = tmp_path / "store"
        killed = _run_harness(store_root, "pool", str(kill_ordinal))
        assert killed.returncode != 0, killed.stdout + killed.stderr
        assert "InjectedCoordinatorDeath" in killed.stderr
        assert "RESULT" not in killed.stdout  # it really died mid-run
        resumed = _run_harness(store_root, "pool", "none")
        assert resumed.returncode == 0, resumed.stdout + resumed.stderr
        # repr() round-trips floats exactly, so this equality is bitwise
        assert _parse_result(resumed.stdout) == serial_value
        # harvest ordinal k dying after its record leaves k+1 durable
        # chunks of CHUNK_SIZE=2 slots each
        assert "STATS resumed=%d" % (2 * (kill_ordinal + 1)) in resumed.stdout
        assert CheckpointStore(store_root).jobs() == []

    @pytest.mark.distributed
    def test_distributed_coordinator_crash_resumes_bit_identically(
        self, serial_value, tmp_path
    ):
        store_root = tmp_path / "store"
        killed = _run_harness(store_root, "distributed", "2")
        assert killed.returncode != 0, killed.stdout + killed.stderr
        assert "InjectedCoordinatorDeath" in killed.stderr
        resumed = _run_harness(store_root, "distributed", "none")
        assert resumed.returncode == 0, resumed.stdout + resumed.stderr
        assert _parse_result(resumed.stdout) == serial_value

    @pytest.mark.distributed
    def test_distributed_resume_after_cluster_loss_in_process(
        self, case, serial_value, tmp_path
    ):
        """The whole cluster (coordinator + spawned workers) goes away
        mid-run; a brand-new cluster resumes from the ledger alone."""
        tn, tree = case
        store = CheckpointStore(tmp_path / "store")
        injector = FaultInjector([FaultSpec("kill-coordinator", chunk=2)])
        interrupted = SlicedExecutor(
            tn,
            tree,
            _sliced(tn),
            backend=DistributedBackend(num_workers=WORKERS, chunk_size=2),
            fault_policy=FaultPolicy.retrying(),
            fault_injector=injector,
        )
        with pytest.raises(InjectedCoordinatorDeath):
            interrupted.run(resume=store)
        resumed = SlicedExecutor(
            tn,
            tree,
            _sliced(tn),
            backend=DistributedBackend(num_workers=WORKERS, chunk_size=2),
            fault_policy=FaultPolicy.retrying(),
        )
        assert resumed.amplitude(resume=store) == serial_value
        assert resumed.stats.resumed_slots >= 1
        assert store.jobs() == []
