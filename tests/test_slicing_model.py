"""Tests of the SlicingCostModel against the reference tree cost formulas."""

from __future__ import annotations

import itertools
import math

import pytest

from repro.core import SlicingCostModel, SlicingError
from repro.tensornet import ContractionTree


def _chain_tree():
    leaf_indices = [{"i", "x"}, {"x", "y"}, {"y", "j"}]
    sizes = {"i": 2, "x": 4, "y": 8, "j": 2}
    return ContractionTree(
        leaf_indices=leaf_indices,
        index_sizes=sizes,
        ssa_path=[(0, 1), (3, 2)],
        output_indices={"i", "j"},
    )


class TestAgreementWithTree:
    @pytest.mark.parametrize("num_sliced", [0, 1, 2, 3])
    def test_total_cost_matches_tree(self, grid_tree, grid_cost_model, num_sliced):
        edges = sorted(grid_tree.all_indices())[:num_sliced]
        sliced = frozenset(edges)
        assert grid_cost_model.total_cost(sliced) == pytest.approx(
            grid_tree.total_cost(sliced), rel=1e-10
        )
        assert grid_cost_model.max_rank(sliced) == grid_tree.max_rank(sliced)
        assert grid_cost_model.max_intermediate_log2_size(sliced) == pytest.approx(
            grid_tree.max_intermediate_log2_size(sliced)
        )

    def test_overhead_matches_eq2(self, grid_tree, grid_cost_model):
        edges = frozenset(sorted(grid_tree.all_indices())[:4])
        expected = grid_tree.total_cost(edges) / grid_tree.total_cost(frozenset())
        assert grid_cost_model.overhead(edges) == pytest.approx(expected, rel=1e-10)

    def test_contraction_cost_per_subtask(self, grid_tree, grid_cost_model):
        edges = frozenset(sorted(grid_tree.all_indices())[:3])
        assert grid_cost_model.contraction_cost(edges) == pytest.approx(
            grid_tree.contraction_cost(edges), rel=1e-10
        )

    def test_num_subtasks(self, grid_cost_model, grid_tree):
        edges = sorted(grid_tree.all_indices())[:5]
        assert grid_cost_model.num_subtasks(frozenset(edges)) == pytest.approx(2.0**5)
        assert grid_cost_model.num_subtasks(frozenset()) == 1.0

    def test_per_node_quantities(self, grid_tree, grid_cost_model):
        edges = frozenset(sorted(grid_tree.all_indices())[:3])
        costs = grid_cost_model.per_node_log2_cost(edges)
        multipliers = grid_cost_model.per_node_multiplier(edges)
        for row, node in enumerate(grid_cost_model.nodes):
            assert costs[row] == pytest.approx(grid_tree.node_log2_flops(node, edges))
            union = grid_tree.contraction_indices(node)
            expected_mult = 2.0 ** (len(edges) - len(edges & union))
            assert multipliers[row] == pytest.approx(expected_mult)


class TestEq4BruteForce:
    def test_total_cost_equals_sum_over_subtasks(self):
        """Eq. 4 must equal the literal sum of Eq. 1 over every subtask."""
        tree = _chain_tree()
        model = SlicingCostModel(tree)
        sliced = ("x", "y")
        per_subtask = tree.contraction_cost(frozenset(sliced))
        num_subtasks = 4 * 8
        assert model.total_cost(frozenset(sliced)) == pytest.approx(
            per_subtask * num_subtasks
        )

    def test_eq4_closed_form(self, grid_tree, grid_cost_model):
        sliced = frozenset(sorted(grid_tree.all_indices())[:4])
        # Eq. 4 with w=2 everywhere: sum_V 2^{|s_V| + |S| - |S ∩ s_V|}
        expected = 0.0
        for node in grid_tree.internal_nodes():
            union = grid_tree.contraction_indices(node)
            expected += 2.0 ** (len(union) + len(sliced) - len(sliced & union))
        assert grid_cost_model.total_cost(sliced) == pytest.approx(expected, rel=1e-10)


class TestCriticalAndCovering:
    def test_critical_nodes_definition(self, grid_tree, grid_cost_model):
        sliced = frozenset(sorted(grid_tree.all_indices())[:4])
        target = grid_cost_model.max_rank(sliced)
        critical = grid_cost_model.critical_nodes(sliced, target)
        assert critical, "at least the max-rank node must be critical"
        for node in critical:
            rank = sum(1 for ix in grid_tree.node_indices(node) if ix not in sliced)
            assert rank == target

    def test_nodes_covering_is_lifetime(self, grid_tree, grid_cost_model):
        edge = sorted(grid_tree.all_indices())[0]
        covering = set(grid_cost_model.nodes_covering(edge))
        expected = {
            node
            for node in grid_tree.internal_nodes()
            if edge in grid_tree.node_indices(node)
        }
        assert covering == expected

    def test_edges_covering_all(self, grid_tree, grid_cost_model):
        # pick a node and ask for the edges covering it: each returned edge
        # must indeed carry the node, and edges on the node must be returned
        node = grid_cost_model.nodes[len(grid_cost_model.nodes) // 2]
        edges = grid_cost_model.edges_covering_all([node])
        node_indices = grid_tree.node_indices(node)
        assert set(edges) == set(node_indices)

    def test_edges_covering_empty_is_all(self, grid_cost_model):
        assert set(grid_cost_model.edges_covering_all([])) == set(grid_cost_model.indices)

    def test_node_result_rank(self, grid_tree, grid_cost_model):
        sliced = frozenset(sorted(grid_tree.all_indices())[:2])
        node = grid_cost_model.nodes[0]
        expected = sum(1 for ix in grid_tree.node_indices(node) if ix not in sliced)
        assert grid_cost_model.node_result_rank(node, sliced) == expected


class TestErrors:
    def test_unknown_edge_raises(self, grid_cost_model):
        with pytest.raises(SlicingError):
            grid_cost_model.total_cost({"definitely-not-an-edge"})

    def test_single_tensor_tree_rejected(self):
        tree = ContractionTree(
            leaf_indices=[{"a"}], index_sizes={"a": 2}, ssa_path=[], output_indices={"a"}
        )
        with pytest.raises(SlicingError):
            SlicingCostModel(tree)

    def test_result_packaging(self, grid_cost_model, grid_tree, grid_target_rank):
        sliced = frozenset(sorted(grid_tree.all_indices())[:3])
        result = grid_cost_model.result(sliced, grid_target_rank, method="test")
        assert result.method == "test"
        assert result.num_sliced == 3
        assert result.overhead == pytest.approx(grid_cost_model.overhead(sliced))
        assert result.satisfies_target == (result.max_rank <= grid_target_rank)
