"""Tests of the three slicing strategies: Algorithm 1, Algorithm 2 and the greedy baseline."""

from __future__ import annotations

import math

import pytest

from repro.core import (
    GreedySliceBaseline,
    LifetimeSliceFinder,
    SimulatedAnnealingSliceRefiner,
    SlicingCostModel,
    cotengra_style_slices,
    extract_stem,
    find_slices,
    remove_redundant_edges,
)
from repro.paths import GreedyOptimizer, HyperOptimizer


class TestLifetimeSliceFinder:
    @pytest.mark.parametrize("delta", [2, 4, 6])
    def test_satisfies_target(self, grid_tree, grid_cost_model, delta):
        target = max(grid_tree.max_rank() - delta, 3)
        result = LifetimeSliceFinder(target).find(grid_tree, cost_model=grid_cost_model)
        assert result.satisfies_target
        assert result.max_rank <= target

    def test_no_slicing_needed_when_target_is_large(self, grid_tree, grid_cost_model):
        target = grid_tree.max_rank()
        result = LifetimeSliceFinder(target).find(grid_tree, cost_model=grid_cost_model)
        assert result.num_sliced == 0
        assert result.overhead == pytest.approx(1.0)

    def test_sliced_edges_exist_in_tree(self, grid_tree, grid_cost_model, grid_target_rank):
        result = LifetimeSliceFinder(grid_target_rank).find(
            grid_tree, cost_model=grid_cost_model
        )
        assert result.sliced <= grid_tree.all_indices()

    def test_smaller_target_needs_at_least_as_many_slices(self, grid_tree, grid_cost_model):
        max_rank = grid_tree.max_rank()
        sizes = []
        for target in (max_rank - 2, max_rank - 4, max_rank - 6):
            target = max(target, 3)
            result = LifetimeSliceFinder(target).find(grid_tree, cost_model=grid_cost_model)
            sizes.append(result.num_sliced)
        assert sizes == sorted(sizes)

    def test_overhead_at_least_one(self, grid_tree, grid_cost_model, grid_target_rank):
        result = LifetimeSliceFinder(grid_target_rank).find(
            grid_tree, cost_model=grid_cost_model
        )
        assert result.overhead >= 1.0 - 1e-12

    def test_stem_only_mode(self, grid_tree, grid_stem):
        target = max(grid_stem.max_rank() - 3, 3)
        finder = LifetimeSliceFinder(target, ensure_full_tree=False)
        sliced = finder.find_on_stem(grid_stem)
        # every stem tensor must fit the target after slicing
        for indices in grid_stem.stem_tensor_indices:
            assert len(indices - sliced) <= target

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            LifetimeSliceFinder(0)

    def test_find_slices_helper_with_refinement(self, grid_tree, grid_target_rank):
        plain = find_slices(grid_tree, grid_target_rank, refine=False)
        refined = find_slices(grid_tree, grid_target_rank, refine=True, seed=0)
        assert plain.satisfies_target and refined.satisfies_target
        assert refined.overhead <= plain.overhead + 1e-9


class TestGreedyBaseline:
    def test_satisfies_target(self, grid_tree, grid_cost_model, grid_target_rank):
        result = GreedySliceBaseline(grid_target_rank).find(
            grid_tree, cost_model=grid_cost_model
        )
        assert result.satisfies_target
        assert result.method == "greedy-baseline"

    def test_deterministic_single_restart(self, grid_tree, grid_cost_model, grid_target_rank):
        a = GreedySliceBaseline(grid_target_rank, seed=0).find(grid_tree, grid_cost_model)
        b = GreedySliceBaseline(grid_target_rank, seed=99).find(grid_tree, grid_cost_model)
        assert a.sliced == b.sliced

    def test_restarts_never_hurt(self, grid_tree, grid_cost_model, grid_target_rank):
        single = GreedySliceBaseline(grid_target_rank, restarts=1, seed=1).find(
            grid_tree, grid_cost_model
        )
        multi = GreedySliceBaseline(grid_target_rank, restarts=4, seed=1).find(
            grid_tree, grid_cost_model
        )
        assert multi.log10_total_cost <= single.log10_total_cost + 1e-9
        assert multi.satisfies_target

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            GreedySliceBaseline(0)
        with pytest.raises(ValueError):
            GreedySliceBaseline(5, restarts=0)

    def test_helper_function(self, grid_tree, grid_target_rank):
        result = cotengra_style_slices(grid_tree, grid_target_rank)
        assert result.satisfies_target


class TestSliceRefiner:
    def test_never_violates_bound_and_never_worse(
        self, grid_tree, grid_cost_model, grid_target_rank
    ):
        finder = LifetimeSliceFinder(grid_target_rank)
        initial = finder.find(grid_tree, cost_model=grid_cost_model)
        refiner = SimulatedAnnealingSliceRefiner(seed=7)
        refined = refiner.refine(
            grid_tree, initial.sliced, grid_target_rank, cost_model=grid_cost_model
        )
        assert refined.satisfies_target
        assert refined.overhead <= initial.overhead + 1e-9
        assert refiner.last_trace is not None
        assert refiner.last_trace.final_overhead == pytest.approx(refined.overhead)

    def test_refines_baseline_slicing_too(self, grid_tree, grid_cost_model, grid_target_rank):
        baseline = GreedySliceBaseline(grid_target_rank).find(grid_tree, grid_cost_model)
        refined = SimulatedAnnealingSliceRefiner(seed=3).refine(
            grid_tree, baseline.sliced, grid_target_rank, cost_model=grid_cost_model
        )
        assert refined.satisfies_target
        assert refined.overhead <= baseline.overhead + 1e-9

    def test_cost_model_scoring_flag_guarded(
        self, grid_tree, grid_cost_model, grid_target_rank
    ):
        """``cost_model=`` swaps the objective to predicted seconds.

        The default (no model) stays bit-identical to the flop-scored
        behaviour: same seed, same trajectory, same result.  With a model
        the refiner still never violates the memory bound.
        """
        from repro.costs import AnalyticCostModel

        finder = LifetimeSliceFinder(grid_target_rank)
        initial = finder.find(grid_tree, cost_model=grid_cost_model)

        default_a = SimulatedAnnealingSliceRefiner(seed=11).refine(
            grid_tree, initial.sliced, grid_target_rank, cost_model=grid_cost_model
        )
        default_b = SimulatedAnnealingSliceRefiner(seed=11).refine(
            grid_tree, initial.sliced, grid_target_rank, cost_model=grid_cost_model
        )
        assert default_a.sliced == default_b.sliced

        timed = SimulatedAnnealingSliceRefiner(
            seed=11, cost_model=AnalyticCostModel()
        ).refine(
            grid_tree, initial.sliced, grid_target_rank, cost_model=grid_cost_model
        )
        assert timed.satisfies_target
        assert timed.max_rank <= grid_target_rank

    def test_cost_model_scorer_units_are_seconds(self, grid_tree, grid_target_rank):
        from repro.costs import AnalyticCostModel

        model = AnalyticCostModel()
        refiner = SimulatedAnnealingSliceRefiner(seed=0, cost_model=model)
        cost_model = SlicingCostModel(grid_tree)
        score = refiner._scorer(grid_tree, cost_model)
        sliced = frozenset(list(grid_tree.all_indices())[:2])
        assert score(sliced) == pytest.approx(
            model.total_seconds(grid_tree, sliced)
        )

    def test_redundant_edge_removal(self, grid_tree, grid_cost_model, grid_target_rank):
        finder = LifetimeSliceFinder(grid_target_rank)
        initial = finder.find(grid_tree, cost_model=grid_cost_model)
        # add an obviously useless sliced edge (one with the shortest lifetime)
        extra = min(
            (ix for ix in grid_cost_model.indices if ix not in initial.sliced),
            key=lambda ix: len(grid_cost_model.nodes_covering(ix)),
        )
        padded = initial.sliced | {extra}
        pruned = remove_redundant_edges(grid_cost_model, padded, grid_target_rank)
        assert grid_cost_model.satisfies_target(pruned, grid_target_rank)
        assert len(pruned) <= len(padded)

    def test_empty_slicing_set_is_noop(self, grid_tree, grid_cost_model):
        target = grid_tree.max_rank()
        refined = SimulatedAnnealingSliceRefiner(seed=0).refine(
            grid_tree, frozenset(), target, cost_model=grid_cost_model
        )
        assert refined.num_sliced == 0
        assert refined.overhead == pytest.approx(1.0)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SimulatedAnnealingSliceRefiner(cooling=2.0)
        with pytest.raises(ValueError):
            SimulatedAnnealingSliceRefiner(initial_temperature=0.001, final_temperature=0.01)


class TestCrossStrategyComparison:
    """The paper's Fig. 10 claim, in miniature: on most paths the lifetime
    pipeline produces slicing sets that are no larger than the greedy
    baseline's and have no higher overhead."""

    def test_pipeline_competitive_with_baseline_across_paths(self, grid_network):
        wins = 0
        total = 0
        for seed in range(6):
            tree = GreedyOptimizer(temperature=0.6, seed=seed).tree(grid_network)
            model = SlicingCostModel(tree)
            target = max(tree.max_rank() - 4, 3)
            if tree.max_rank() <= target:
                continue
            ours = find_slices(tree, target, refine=True, seed=seed)
            baseline = GreedySliceBaseline(target).find(tree, cost_model=model)
            total += 1
            if (
                ours.num_sliced <= baseline.num_sliced
                and ours.overhead <= baseline.overhead * 1.05
            ):
                wins += 1
        assert total > 0
        assert wins / total >= 0.5
