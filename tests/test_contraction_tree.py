"""Tests of the ContractionTree data structure and its cost model."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.tensornet import (
    ContractionTree,
    ContractionTreeError,
    Tensor,
    TensorNetwork,
    ssa_path_from_linear,
)


def _chain_tree():
    """The matrix chain A[i,x] B[x,y] C[y,j], contracted as ((A,B),C)."""
    leaf_indices = [{"i", "x"}, {"x", "y"}, {"y", "j"}]
    sizes = {"i": 2, "x": 4, "y": 8, "j": 2}
    return ContractionTree(
        leaf_indices=leaf_indices,
        index_sizes=sizes,
        ssa_path=[(0, 1), (3, 2)],
        output_indices={"i", "j"},
    )


class TestConstruction:
    def test_basic_structure(self):
        tree = _chain_tree()
        assert tree.num_leaves == 3
        assert tree.root == 4
        assert tree.internal_nodes() == (3, 4)
        assert tree.is_leaf(0)
        assert not tree.is_leaf(3)
        assert tree.children(3) == (0, 1)
        assert tree.leaves_under(3) == frozenset({0, 1})
        assert tree.leaves_under(4) == frozenset({0, 1, 2})

    def test_node_indices(self):
        tree = _chain_tree()
        # A*B removes x (internal to the pair), keeps i (output) and y (needed by C)
        assert tree.node_indices(3) == frozenset({"i", "y"})
        # root keeps only the output indices
        assert tree.node_indices(4) == frozenset({"i", "j"})

    def test_wrong_step_count(self):
        with pytest.raises(ContractionTreeError):
            ContractionTree(
                leaf_indices=[{"a"}, {"a"}],
                index_sizes={"a": 2},
                ssa_path=[],
            )

    def test_unknown_node_in_path(self):
        with pytest.raises(ContractionTreeError):
            ContractionTree(
                leaf_indices=[{"a"}, {"a"}],
                index_sizes={"a": 2},
                ssa_path=[(0, 7)],
            )

    def test_node_reuse_rejected(self):
        with pytest.raises(ContractionTreeError):
            ContractionTree(
                leaf_indices=[{"a"}, {"a", "b"}, {"b"}],
                index_sizes={"a": 2, "b": 2},
                ssa_path=[(0, 1), (0, 2)],
            )

    def test_self_contraction_rejected(self):
        with pytest.raises(ContractionTreeError):
            ContractionTree(
                leaf_indices=[{"a"}, {"a"}],
                index_sizes={"a": 2},
                ssa_path=[(0, 0)],
            )

    def test_missing_size_rejected(self):
        with pytest.raises(ContractionTreeError):
            ContractionTree(
                leaf_indices=[{"a"}, {"a"}],
                index_sizes={},
                ssa_path=[(0, 1)],
            )

    def test_empty_tree_rejected(self):
        with pytest.raises(ContractionTreeError):
            ContractionTree(leaf_indices=[], index_sizes={}, ssa_path=[])

    def test_from_network(self):
        tn = TensorNetwork()
        tn.add_tensor(Tensor(("i", "x"), sizes={"i": 2, "x": 4}))
        tn.add_tensor(Tensor(("x", "j"), sizes={"x": 4, "j": 2}))
        tree = ContractionTree.from_network(tn, [(0, 1)])
        assert tree.num_leaves == 2
        assert tree.node_indices(tree.root) == frozenset({"i", "j"})
        assert tree.leaf_tids == tn.tensor_ids


class TestCosts:
    def test_node_flops_by_hand(self):
        tree = _chain_tree()
        # contraction (A, B): indices {i, x} ∪ {x, y} ∪ {i, y} = {i, x, y} → 2*4*8 = 64
        assert 2.0 ** tree.node_log2_flops(3) == pytest.approx(64.0)
        # contraction (AB, C): {i, y} ∪ {y, j} ∪ {i, j} → 2*8*2 = 32
        assert 2.0 ** tree.node_log2_flops(4) == pytest.approx(32.0)
        assert tree.contraction_cost() == pytest.approx(96.0)

    def test_space_cost_by_hand(self):
        tree = _chain_tree()
        # biggest intermediate is AB with indices {i, y}: 2*8 = 16 elements
        assert 2.0 ** tree.max_intermediate_log2_size() == pytest.approx(16.0)
        assert tree.max_rank() == 2

    def test_sliced_cost_eq4(self):
        tree = _chain_tree()
        sliced = {"y"}
        # per-subtask: node 3 loses y -> 2*4=8; node 4 loses y -> 2*2=4; times w(y)=8 subtasks
        assert tree.total_cost(sliced) == pytest.approx(8 * (8 + 4))
        assert tree.slicing_overhead(sliced) == pytest.approx(96.0 / 96.0 * (8 * 12) / 96.0)

    def test_slicing_edge_outside_everything_doubles_cost(self):
        # slicing an edge e multiplies the cost of contractions not involving e
        tree = _chain_tree()
        sliced = {"i"}  # i participates in both contractions -> no overhead
        assert tree.slicing_overhead(sliced) == pytest.approx(1.0)

    def test_total_cost_monotone_in_slices(self):
        tree = _chain_tree()
        assert tree.total_cost({"x"}) >= tree.total_cost(frozenset())

    def test_log10_cost(self):
        tree = _chain_tree()
        assert tree.log10_total_cost() == pytest.approx(math.log10(96.0))

    def test_peak_memory_and_intensity_positive(self):
        tree = _chain_tree()
        assert tree.peak_memory_elements() > 0
        assert tree.arithmetic_intensity() > 0

    def test_subtree_cost_adds_up(self):
        tree = _chain_tree()
        assert tree.subtree_cost(tree.root) == pytest.approx(tree.contraction_cost())


class TestNavigation:
    def test_parent_map_and_depth(self):
        tree = _chain_tree()
        parents = tree.parent_map()
        assert parents[3] == 4
        assert parents[0] == 3
        assert tree.node_depth(tree.root) == 0
        assert tree.node_depth(0) == 2

    def test_path_to_root(self):
        tree = _chain_tree()
        assert tree.path_to_root(0) == [0, 3, 4]
        assert tree.path_to_root(2) == [2, 4]

    def test_leaf_of_tid(self):
        tree = _chain_tree()
        assert tree.leaf_of_tid(1) == 1
        with pytest.raises(ContractionTreeError):
            tree.leaf_of_tid(99)

    def test_parent_map_is_cached(self):
        # the tree is immutable: repeated queries must reuse the same map
        tree = _chain_tree()
        assert tree.parent_map() is tree.parent_map()

    def test_leaf_of_tid_matches_leaf_tids_order(self):
        tree = _chain_tree()
        for pos, tid in enumerate(tree.leaf_tids):
            assert tree.leaf_of_tid(tid) == pos

    def test_unknown_node_raises(self):
        tree = _chain_tree()
        with pytest.raises(ContractionTreeError):
            tree.node_indices(42)
        with pytest.raises(ContractionTreeError):
            tree.contraction_indices(0)  # leaves have no contraction


class TestLinearPathConversion:
    def test_ssa_from_linear(self):
        # linear path over 4 tensors: contract positions (0,1) -> new at end,
        # then (0,1) again of the remaining [t2, t3, t01], then (0,1) of [t23?, ...]
        ssa = ssa_path_from_linear([(0, 1), (0, 1), (0, 1)], num_leaves=4)
        assert ssa == [(0, 1), (2, 3), (4, 5)]

    def test_ssa_from_linear_interleaved(self):
        ssa = ssa_path_from_linear([(1, 2), (0, 1)], num_leaves=3)
        assert ssa == [(1, 2), (0, 3)]

    def test_self_step_rejected(self):
        with pytest.raises(ContractionTreeError):
            ssa_path_from_linear([(0, 0)], num_leaves=2)
