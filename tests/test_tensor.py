"""Tests of the labelled Tensor class."""

from __future__ import annotations

import numpy as np
import pytest

from repro.tensornet import Tensor, TensorError


class TestConstruction:
    def test_concrete_tensor_infers_sizes(self):
        t = Tensor(("a", "b"), data=np.zeros((2, 3)))
        assert t.shape == (2, 3)
        assert t.size_of("b") == 3
        assert not t.is_abstract

    def test_abstract_tensor_requires_sizes(self):
        with pytest.raises(TensorError):
            Tensor(("a",))

    def test_abstract_tensor(self):
        t = Tensor(("a", "b", "c"), sizes={"a": 2, "b": 2, "c": 2})
        assert t.is_abstract
        assert t.size == 8
        assert t.log2_size == pytest.approx(3.0)

    def test_duplicate_indices_rejected(self):
        with pytest.raises(TensorError):
            Tensor(("a", "a"), sizes={"a": 2})

    def test_rank_mismatch_rejected(self):
        with pytest.raises(TensorError):
            Tensor(("a",), data=np.zeros((2, 2)))

    def test_size_conflict_rejected(self):
        with pytest.raises(TensorError):
            Tensor(("a",), data=np.zeros(2), sizes={"a": 3})

    def test_missing_size_rejected(self):
        with pytest.raises(TensorError):
            Tensor(("a", "b"), sizes={"a": 2})

    def test_unknown_index_size_query(self):
        t = Tensor(("a",), sizes={"a": 2})
        with pytest.raises(TensorError):
            t.size_of("zz")


class TestTransforms:
    def test_reindexed(self):
        t = Tensor(("a", "b"), data=np.arange(4).reshape(2, 2))
        r = t.reindexed({"a": "x"})
        assert r.indices == ("x", "b")
        assert np.array_equal(r.data, t.data)

    def test_transposed(self):
        data = np.arange(6).reshape(2, 3)
        t = Tensor(("a", "b"), data=data)
        p = t.transposed(("b", "a"))
        assert p.indices == ("b", "a")
        assert np.array_equal(p.data, data.T)

    def test_transposed_invalid_order(self):
        t = Tensor(("a", "b"), sizes={"a": 2, "b": 2})
        with pytest.raises(TensorError):
            t.transposed(("a", "c"))

    def test_with_tags(self):
        t = Tensor(("a",), sizes={"a": 2}, tags=("x",))
        assert t.with_tags("y").tags == frozenset({"x", "y"})
        assert t.retagged(["z"]).tags == frozenset({"z"})

    def test_with_data(self):
        t = Tensor(("a",), sizes={"a": 2})
        c = t.with_data(np.ones(2))
        assert not c.is_abstract

    def test_require_data_on_abstract(self):
        with pytest.raises(TensorError):
            Tensor(("a",), sizes={"a": 2}).require_data()


class TestSlicing:
    def test_slice_index_reduces_rank(self):
        data = np.arange(8).reshape(2, 2, 2)
        t = Tensor(("a", "b", "c"), data=data)
        s = t.slice_index("b", 1)
        assert s.indices == ("a", "c")
        assert np.array_equal(s.data, data[:, 1, :])

    def test_slice_missing_index_is_noop(self):
        t = Tensor(("a",), data=np.arange(2))
        assert t.slice_index("zz", 0) is t

    def test_slice_out_of_range(self):
        t = Tensor(("a",), data=np.arange(2))
        with pytest.raises(TensorError):
            t.slice_index("a", 5)

    def test_slice_abstract_tensor(self):
        t = Tensor(("a", "b"), sizes={"a": 2, "b": 4})
        s = t.slice_index("b", 0)
        assert s.indices == ("a",)
        assert s.is_abstract

    def test_sum_of_slices_reconstructs_contraction(self):
        # summing a sliced shared index reproduces the tensordot
        rng = np.random.default_rng(0)
        a = Tensor(("i", "k"), data=rng.normal(size=(3, 4)))
        b = Tensor(("k", "j"), data=rng.normal(size=(4, 5)))
        full = a.contract_with(b)
        partial = sum(
            a.slice_index("k", v).contract_with(b.slice_index("k", v)).data
            for v in range(4)
        )
        assert np.allclose(full.data, partial)


class TestContraction:
    def test_matrix_multiply(self):
        rng = np.random.default_rng(1)
        a = rng.normal(size=(3, 4))
        b = rng.normal(size=(4, 5))
        out = Tensor(("i", "k"), data=a).contract_with(Tensor(("k", "j"), data=b))
        assert out.indices == ("i", "j")
        assert np.allclose(out.data, a @ b)

    def test_outer_product_when_no_shared_index(self):
        a = Tensor(("i",), data=np.array([1.0, 2.0]))
        b = Tensor(("j",), data=np.array([3.0, 4.0]))
        out = a.contract_with(b)
        assert out.shape == (2, 2)
        assert np.allclose(out.data, np.outer([1, 2], [3, 4]))

    def test_full_contraction_to_scalar(self):
        a = Tensor(("i",), data=np.array([1.0, 2.0]))
        b = Tensor(("i",), data=np.array([3.0, 4.0]))
        out = a.contract_with(b)
        assert out.ndim == 0
        assert out.data == pytest.approx(11.0)

    def test_contract_with_abstract_raises(self):
        a = Tensor(("i",), sizes={"i": 2})
        b = Tensor(("i",), data=np.ones(2))
        with pytest.raises(TensorError):
            a.contract_with(b)
