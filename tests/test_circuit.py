"""Unit tests of the circuit IR."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import Circuit, CircuitError, Gate, Moment


class TestConstruction:
    def test_empty_circuit(self):
        c = Circuit(3)
        assert c.num_qubits == 3
        assert c.num_gates == 0
        assert c.depth() == 0

    def test_invalid_width(self):
        with pytest.raises(CircuitError):
            Circuit(0)

    def test_add_gate_and_chain(self):
        c = Circuit(2).add("h", 0).add("cx", 0, 1)
        assert c.num_gates == 2
        assert c.gates[0].name == "h"

    def test_add_with_params(self):
        c = Circuit(1).add("rx", 0, params=(0.5,))
        assert c.gates[0].params == (0.5,)

    def test_out_of_range_qubit(self):
        with pytest.raises(CircuitError):
            Circuit(2).add("h", 5)

    def test_extend_and_copy_independent(self):
        c = Circuit(2).add("h", 0)
        d = c.copy()
        d.add("x", 1)
        assert c.num_gates == 1
        assert d.num_gates == 2

    def test_concatenation(self):
        a = Circuit(2).add("h", 0)
        b = Circuit(2).add("cx", 0, 1)
        c = a + b
        assert c.num_gates == 2
        assert a.num_gates == 1

    def test_concatenation_width_mismatch(self):
        with pytest.raises(CircuitError):
            Circuit(2) + Circuit(3)

    def test_equality(self):
        a = Circuit(2).add("h", 0)
        b = Circuit(2).add("h", 0)
        assert a == b
        b.add("x", 1)
        assert a != b


class TestIntrospection:
    def test_moments_pack_disjoint_gates(self):
        c = Circuit(4).add("h", 0).add("h", 1).add("cx", 0, 1).add("h", 2)
        moments = c.moments()
        assert len(moments) == 2
        assert set(g.name for g in moments[0]) == {"h"}
        assert len(moments[0]) == 3  # h0, h1, h2 all fit in moment 0

    def test_depth_counts_serial_dependencies(self):
        c = Circuit(2).add("h", 0).add("x", 0).add("z", 0)
        assert c.depth() == 3

    def test_two_qubit_gate_count(self):
        c = Circuit(3).add("h", 0).add("cz", 0, 1).add("cz", 1, 2)
        assert c.num_two_qubit_gates == 2

    def test_gate_counts(self):
        c = Circuit(2).add("h", 0).add("h", 1).add("cx", 0, 1)
        assert c.gate_counts() == {"h": 2, "cx": 1}

    def test_interaction_graph(self):
        c = Circuit(3).add("cz", 0, 1).add("cz", 1, 0).add("cz", 1, 2)
        graph = c.interaction_graph()
        assert graph[(0, 1)] == 2
        assert graph[(1, 2)] == 1

    def test_qubits_used(self):
        c = Circuit(5).add("h", 1).add("cz", 3, 4)
        assert c.qubits_used() == frozenset({1, 3, 4})

    def test_iteration_and_indexing(self):
        c = Circuit(2).add("h", 0).add("x", 1)
        assert [g.name for g in c] == ["h", "x"]
        assert c[1].name == "x"
        assert len(c) == 2


class TestMoment:
    def test_overlapping_gates_rejected(self):
        with pytest.raises(CircuitError):
            Moment((Gate("h", (0,)), Gate("x", (0,))))

    def test_moment_qubits(self):
        m = Moment((Gate("h", (0,)), Gate("cz", (1, 2))))
        assert m.qubits == frozenset({0, 1, 2})
        assert len(m) == 2


class TestUnitary:
    def test_unitary_of_known_circuit(self):
        # H then CX gives the Bell-state preparation unitary
        c = Circuit(2).add("h", 0).add("cx", 0, 1)
        u = c.unitary()
        state = u @ np.array([1, 0, 0, 0], dtype=complex)
        expected = np.array([1, 0, 0, 1], dtype=complex) / np.sqrt(2)
        assert np.allclose(state, expected)

    def test_unitary_is_unitary(self):
        c = Circuit(3)
        rng = np.random.default_rng(0)
        for layer in range(3):
            for q in range(3):
                c.add("u3", q, params=tuple(rng.uniform(0, 2 * np.pi, 3)))
            c.add("cz", layer % 2, (layer % 2) + 1)
        u = c.unitary()
        assert np.allclose(u.conj().T @ u, np.eye(8), atol=1e-10)

    def test_inverse_circuit_gives_identity(self):
        c = Circuit(2).add("h", 0).add("t", 1).add("cx", 0, 1).add("rz", 0, params=(0.3,))
        u = (c + c.inverse()).unitary()
        assert np.allclose(u, np.eye(4), atol=1e-10)

    def test_unitary_refuses_large_circuits(self):
        with pytest.raises(CircuitError):
            Circuit(20).unitary(max_qubits=12)
