"""Tests of the circuit → tensor network converter."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import Circuit, StateVectorSimulator, amplitude, random_brickwork_circuit
from repro.tensornet import (
    CircuitToTensorNetwork,
    amplitude_network,
    circuit_to_tensor_network,
    simplify_network,
)


class TestStructure:
    def test_closed_network_has_no_open_indices(self):
        circ = Circuit(2).add("h", 0).add("cx", 0, 1)
        tn = amplitude_network(circ, (0, 0))
        assert tn.output_indices() == frozenset()
        # 2 inputs + 2 gates + 2 outputs
        assert tn.num_tensors == 6

    def test_open_network_has_one_open_index_per_qubit(self):
        circ = Circuit(3).add("h", 0).add("cz", 1, 2)
        result = CircuitToTensorNetwork().convert(circ)
        tn = result.network
        assert len(tn.output_indices()) == 3
        assert set(result.output_index_of_qubit) == {0, 1, 2}

    def test_abstract_conversion_has_no_data(self):
        circ = random_brickwork_circuit(4, 3, seed=0)
        tn = circuit_to_tensor_network(circ, bitstring=[0] * 4, concrete=False)
        assert not tn.is_concrete()
        assert tn.num_tensors > 0

    def test_gate_wiring_shares_one_index_per_qubit(self):
        circ = Circuit(1).add("h", 0).add("x", 0)
        tn = circuit_to_tensor_network(circ)
        # input -- h -- x -- (open): the h and x tensors share exactly one index
        tids = tn.tensor_ids
        gate_tensors = [tid for tid in tids if any(t.startswith("gate:") for t in tn.tensor(tid).tags)]
        assert len(gate_tensors) == 2
        assert len(tn.shared_indices(*gate_tensors)) == 1

    def test_bitstring_length_checked(self):
        circ = Circuit(2).add("h", 0)
        with pytest.raises(ValueError):
            amplitude_network(circ, (0,))

    def test_initial_state_length_checked(self):
        circ = Circuit(2).add("h", 0)
        with pytest.raises(ValueError):
            circuit_to_tensor_network(circ, initial_state=(1,))


class TestNumericalCorrectness:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("bitstring", [(0, 0, 0, 0), (1, 0, 1, 1)])
    def test_closed_amplitude_matches_statevector(self, seed, bitstring):
        circ = random_brickwork_circuit(4, 3, seed=seed)
        tn = amplitude_network(circ, bitstring)
        value = complex(tn.contract_all().require_data())
        assert value == pytest.approx(amplitude(circ, bitstring), abs=1e-10)

    def test_open_network_contracts_to_full_state(self):
        circ = random_brickwork_circuit(3, 2, seed=4)
        result = CircuitToTensorNetwork().convert(circ)
        tn = result.network
        out = tn.contract_all()
        order = tuple(result.output_index_of_qubit[q] for q in range(3))
        state = out.transposed(order).data.reshape(-1)
        expected = StateVectorSimulator(3).run(circ).state_vector()
        assert np.allclose(state, expected, atol=1e-10)

    def test_custom_initial_state(self):
        circ = Circuit(2).add("cx", 0, 1)
        tn = circuit_to_tensor_network(circ, bitstring=(1, 1), initial_state=(1, 0))
        value = complex(tn.contract_all().require_data())
        assert value == pytest.approx(1.0)

    def test_sycamore_style_gates_round_trip(self):
        from repro.circuits import grid_circuit

        circ = grid_circuit(2, 3, cycles=3, seed=7)
        bitstring = [0, 1, 0, 1, 1, 0]
        tn = amplitude_network(circ, bitstring)
        simplify_network(tn)
        value = complex(tn.contract_all().require_data())
        assert value == pytest.approx(amplitude(circ, bitstring), abs=1e-9)

    def test_amplitudes_sum_to_unit_probability(self):
        circ = random_brickwork_circuit(3, 2, seed=8)
        total = 0.0
        for i in range(8):
            bits = [(i >> (2 - q)) & 1 for q in range(3)]
            tn = amplitude_network(circ, bits)
            total += abs(complex(tn.contract_all().require_data())) ** 2
        assert total == pytest.approx(1.0, abs=1e-9)
