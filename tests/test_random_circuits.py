"""Tests of the RQC generators (Sycamore-style grid circuits, brickwork)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import (
    GridSpec,
    grid_circuit,
    grid_coupling_map,
    random_brickwork_circuit,
    sycamore_circuit,
    sycamore_coupling_map,
)
from repro.circuits.random_circuits import SYCAMORE_FSIM_PHI, SYCAMORE_FSIM_THETA


class TestGridSpec:
    def test_num_qubits_counts_missing(self):
        spec = GridSpec(rows=3, cols=4, missing=((0, 0), (2, 3)))
        assert spec.num_qubits == 10

    def test_site_index_is_dense_and_skips_missing(self):
        spec = GridSpec(rows=2, cols=2, missing=((0, 1),))
        index = spec.site_index()
        assert (0, 1) not in index
        assert sorted(index.values()) == [0, 1, 2]


class TestCouplingMap:
    def test_patterns_are_matchings(self):
        spec = GridSpec(rows=4, cols=5)
        patterns = grid_coupling_map(spec)
        for name, pairs in patterns.items():
            qubits = [q for pair in pairs for q in pair]
            assert len(qubits) == len(set(qubits)), f"pattern {name} is not a matching"

    def test_all_grid_edges_covered_exactly_once(self):
        spec = GridSpec(rows=3, cols=3)
        patterns = grid_coupling_map(spec)
        all_pairs = [tuple(sorted(p)) for pairs in patterns.values() for p in pairs]
        assert len(all_pairs) == len(set(all_pairs))
        # a 3x3 grid has 2*3 vertical + 3*2 horizontal = 12 edges
        assert len(all_pairs) == 12

    def test_sycamore_layout_size(self):
        spec, patterns = sycamore_coupling_map()
        assert spec.num_qubits == 53
        assert set(patterns) == {"A", "B", "C", "D"}


class TestGridCircuit:
    def test_deterministic_given_seed(self):
        a = grid_circuit(3, 3, cycles=4, seed=7)
        b = grid_circuit(3, 3, cycles=4, seed=7)
        assert a == b

    def test_different_seeds_differ(self):
        a = grid_circuit(3, 3, cycles=4, seed=7)
        b = grid_circuit(3, 3, cycles=4, seed=8)
        assert a != b

    def test_gate_structure(self):
        cycles = 6
        circ = grid_circuit(3, 4, cycles=cycles, seed=0)
        counts = circ.gate_counts()
        single = sum(counts.get(g, 0) for g in ("sx", "sy", "sw"))
        # one single-qubit layer per cycle plus the final layer
        assert single == 12 * (cycles + 1)
        assert counts.get("fsim", 0) > 0

    def test_single_qubit_gates_never_repeat_consecutively(self):
        circ = grid_circuit(3, 3, cycles=8, seed=5)
        last: dict[int, str] = {}
        for gate in circ:
            if gate.num_qubits == 1:
                q = gate.qubits[0]
                if q in last:
                    assert gate.name != last[q], f"repeated {gate.name} on qubit {q}"
                last[q] = gate.name

    def test_fsim_angles(self):
        circ = grid_circuit(2, 2, cycles=2, seed=0)
        for gate in circ:
            if gate.name == "fsim":
                assert gate.params == (SYCAMORE_FSIM_THETA, SYCAMORE_FSIM_PHI)

    def test_couplers_respect_grid_adjacency(self):
        rows, cols = 3, 4
        spec = GridSpec(rows=rows, cols=cols)
        index = spec.site_index()
        position = {v: k for k, v in index.items()}
        circ = grid_circuit(rows, cols, cycles=8, seed=1)
        for gate in circ:
            if gate.num_qubits == 2:
                (r0, c0), (r1, c1) = position[gate.qubits[0]], position[gate.qubits[1]]
                assert abs(r0 - r1) + abs(c0 - c1) == 1

    def test_zero_cycles_gives_empty_circuit(self):
        circ = grid_circuit(2, 2, cycles=0, seed=0)
        assert circ.num_gates == 0

    def test_negative_cycles_rejected(self):
        with pytest.raises(ValueError):
            grid_circuit(2, 2, cycles=-1)

    def test_sycamore_circuit_dimensions(self):
        circ = sycamore_circuit(cycles=4, seed=0)
        assert circ.num_qubits == 53
        assert circ.num_two_qubit_gates > 0


class TestBrickwork:
    def test_structure(self):
        circ = random_brickwork_circuit(6, 4, seed=0)
        assert circ.num_qubits == 6
        counts = circ.gate_counts()
        assert counts["u3"] == 6 * 4
        # alternating layers: 3 + 2 + 3 + 2 pairs on 6 qubits (offsets 0 and 1)
        assert counts["cz"] == 10

    def test_deterministic(self):
        assert random_brickwork_circuit(4, 3, seed=2) == random_brickwork_circuit(4, 3, seed=2)

    def test_custom_two_qubit_gate(self):
        circ = random_brickwork_circuit(4, 2, seed=0, two_qubit_gate="iswap")
        assert "iswap" in circ.gate_counts()

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            random_brickwork_circuit(0, 3)
