"""Tests of the native tape engine (§5.3.1 lowered to a flat program).

The fused execution sequence lowers into a :class:`TapeProgram` — opcode
table, operand/register tables, permutation descriptors, concatenated
reduced maps — that a numba kernel walks with no per-step Python.  Numba
is an *optional* dependency, so these tests pin the machinery that must
hold either way:

* the lowering itself (register allocation, perm descriptors, scratch
  sizing, pickling) is pure numpy and is tested directly;
* :func:`interpret_program` — the kernel's executable specification —
  must be bit-identical to the stepwise oracle on every assignment; the
  CI leg that installs numba pins the njit kernel against the same
  contract;
* engine selection (``tape_engine="auto"|"python"|"native"``) and the
  graceful fallback when numba is absent or the kernel is disarmed;
* a fake native engine (``run_native`` monkeypatched to the reference
  interpreter) drives the full executor stack — caching, batching,
  chunked backends, fault recovery — through the native code path in a
  numba-free environment.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.circuits import random_brickwork_circuit
from repro.execution import (
    FaultInjector,
    FaultPolicy,
    FaultSpec,
    PlanError,
    PlanStats,
    SharedMemoryProcessPoolBackend,
    SlicedExecutor,
    StemSlots,
    TapeProgram,
    ThreadPoolBackend,
    compile_plan,
    interpret_program,
    native_available,
)
from repro.execution import tape as tape_module
from repro.execution.tape import OP_BMM, OP_DOT, run_native, warm_kernel
from repro.paths import GreedyOptimizer
from repro.tensornet import amplitude_network, simplify_network

SETTINGS = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _case(num_qubits=6, depth=4, seed=13):
    circ = random_brickwork_circuit(num_qubits, depth, seed=seed)
    tn = amplitude_network(circ, [0] * num_qubits)
    simplify_network(tn)
    tree = GreedyOptimizer(seed=1).tree(tn)
    return tn, tree


@pytest.fixture(scope="module")
def case():
    return _case()


@pytest.fixture(scope="module")
def sliced(case):
    tn, _ = case
    return sorted(tn.inner_indices())[:4]


@pytest.fixture(scope="module")
def stepwise_value(case, sliced):
    tn, tree = case
    return SlicedExecutor(tn, tree, sliced).amplitude()


def _native_plan(tn, tree, sliced, **kwargs):
    return compile_plan(
        tn, tree, frozenset(sliced), fused=True, tape_engine="native", **kwargs
    )


def _leaf_inputs(plan, network, assignment):
    return {
        ls.node: plan._load_leaf(network, ls, assignment)
        for ls in plan._leaf_steps
    }


def _fake_run_native(program, live, slots, stats):
    """A drop-in ``run_native``: the reference interpreter as the kernel.

    Mirrors the real engine's contract — writes ``live[root]``, stamps
    the same stats — so the full executor stack exercises the native
    dispatch path without numba.
    """
    inputs = {node: live[node] for node, _ in program.inputs}
    live[program.root] = interpret_program(program, inputs)
    if stats is not None:
        stats.tape_engine = "native"
        counts = stats.node_counts
        for node in program.nodes:
            counts[node] = counts.get(node, 0) + 1
        stats.slot_writes += program.slot_steps
        stats.branch_writes += program.branch_steps
        stats.fused_steps += program.fused_steps
        stats.record_stage("fused_kernel", 0.0)
    return True


class TestLowering:
    """Structure of the lowered array-of-structs program."""

    def test_fused_plan_lowers(self, case, sliced):
        tn, tree = case
        plan = _native_plan(tn, tree, sliced)
        assert plan.tape_engine == "native"
        full, cached = plan.native_programs
        assert isinstance(full, TapeProgram)
        assert full.num_steps == len(full.ops) > 0
        assert full.root == tree.root

    def test_table_invariants(self, case, sliced):
        tn, tree = case
        plan = _native_plan(tn, tree, sliced)
        for program in plan.native_programs:
            if program is None:
                continue
            n = program.num_steps
            assert program.ops.shape == (n, 4)
            assert program.dims.shape == (n, 4)
            assert program.lhs_perm.shape == (n, 5)
            assert program.rhs_perm.shape == (n, 5)
            for i in range(n):
                opcode, lhs_reg, rhs_reg, out_reg = program.ops[i]
                assert opcode in (OP_DOT, OP_BMM)
                for reg in (lhs_reg, rhs_reg, out_reg):
                    assert 0 <= reg < program.num_regs
                for descriptor in (program.lhs_perm[i], program.rhs_perm[i]):
                    mode, prefix, core, suffix, offset = (
                        int(v) for v in descriptor
                    )
                    assert mode in (0, 1)
                    if mode == 1:
                        # the reduced map lives inside the shared pool
                        assert 0 <= offset
                        assert offset + core <= len(program.core_maps)

    def test_input_registers_are_fresh(self, case, sliced):
        """Inputs preload before the walk, so their registers must never
        be written by an op that runs before the input's last read."""
        tn, tree = case
        plan = _native_plan(tn, tree, sliced)
        for program in plan.native_programs:
            if program is None:
                continue
            regs = [reg for _, reg in program.inputs]
            assert len(set(regs)) == len(regs)
            for _, reg in program.inputs:
                reads = [
                    i
                    for i in range(program.num_steps)
                    if reg in (program.ops[i][1], program.ops[i][2])
                ]
                writes = [
                    i
                    for i in range(program.num_steps)
                    if program.ops[i][3] == reg
                ]
                if writes:
                    first_write = min(writes)
                    # every read before the first write reads the input;
                    # the input must have been fully consumed by then
                    consumed_by = max(
                        (i for i in reads if i < first_write), default=-1
                    )
                    assert consumed_by < first_write

    def test_scratch_covers_staged_operands(self, case, sliced):
        tn, tree = case
        plan = _native_plan(tn, tree, sliced)
        for program in plan.native_programs:
            if program is None:
                continue
            need_lhs = need_rhs = 0
            for i in range(program.num_steps):
                for side, descriptor in (
                    ("lhs", program.lhs_perm[i]),
                    ("rhs", program.rhs_perm[i]),
                ):
                    mode, prefix, core, suffix, _ = (int(v) for v in descriptor)
                    if mode == 0:
                        continue
                    size = prefix * core * suffix
                    if side == "lhs":
                        need_lhs = max(need_lhs, size)
                    else:
                        need_rhs = max(need_rhs, size)
            assert program.scratch_lhs >= need_lhs
            assert program.scratch_rhs >= need_rhs

    def test_program_pickles(self, case, sliced):
        tn, tree = case
        plan = _native_plan(tn, tree, sliced)
        program = plan.native_programs[0]
        clone = pickle.loads(pickle.dumps(program))
        assert np.array_equal(clone.ops, program.ops)
        assert np.array_equal(clone.dims, program.dims)
        assert np.array_equal(clone.core_maps, program.core_maps)
        assert clone.inputs == program.inputs
        assert clone.root_shape == program.root_shape
        assignment = {ix: 0 for ix in sliced}
        inputs = _leaf_inputs(plan, tn, assignment)
        expected = interpret_program(program, inputs)
        actual = interpret_program(clone, inputs)
        assert np.array_equal(expected, actual)


class TestInterpreterEquivalence:
    """The reference interpreter vs the stepwise oracle, bit for bit."""

    def test_every_assignment_matches_stepwise(self, case, sliced):
        tn, tree = case
        stepwise = compile_plan(tn, tree, frozenset(sliced))
        plan = _native_plan(tn, tree, sliced)
        program = plan.native_programs[0]
        slots = StemSlots()
        import itertools

        sizes = {ix: tree.index_size(ix) for ix in sliced}
        for values in itertools.product(*[range(sizes[ix]) for ix in sliced]):
            assignment = dict(zip(sliced, values))
            expected = stepwise.execute(
                tn, assignment, slots=slots
            ).require_data()
            inputs = _leaf_inputs(plan, tn, assignment)
            actual = interpret_program(program, inputs)
            assert np.array_equal(expected, actual), assignment

    def test_batched_program_has_bmm_ops(self, case, sliced):
        tn, tree = case
        plan = _native_plan(tn, tree, sliced, batch_indices=[sliced[0]])
        program = plan.native_programs[0]
        if program is None:
            pytest.skip("batched sequence not lowerable on this tree")
        opcodes = {int(op[0]) for op in program.ops}
        assert OP_BMM in opcodes

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @SETTINGS
    def test_property_seeds(self, seed):
        tn, tree = _case(num_qubits=5, depth=3, seed=seed)
        sliced = sorted(tn.inner_indices())[:3]
        stepwise = SlicedExecutor(tn, tree, sliced).amplitude()
        plan = _native_plan(tn, tree, sliced)
        program = plan.native_programs[0]
        if program is None:
            # einsum fallback in the sequence: nothing to lower, and the
            # executor transparently keeps the Python walker
            fused = SlicedExecutor(
                tn, tree, sliced, fused=True, tape_engine="native"
            )
            assert fused.amplitude() == stepwise
            return
        slots = StemSlots()
        oracle = compile_plan(tn, tree, frozenset(sliced))
        import itertools

        sizes = {ix: tree.index_size(ix) for ix in sliced}
        for values in itertools.product(*[range(sizes[ix]) for ix in sliced]):
            assignment = dict(zip(sliced, values))
            expected = oracle.execute(tn, assignment, slots=slots).require_data()
            actual = interpret_program(
                program, _leaf_inputs(plan, tn, assignment)
            )
            assert np.array_equal(expected, actual)


class TestEngineSelection:
    """``tape_engine`` resolution, validation, and graceful fallback."""

    def test_bad_engine_rejected_by_compile(self, case, sliced):
        tn, tree = case
        with pytest.raises(PlanError, match="tape_engine"):
            compile_plan(tn, tree, frozenset(sliced), fused=True, tape_engine="llvm")

    def test_native_requires_fused_plan(self, case, sliced):
        tn, tree = case
        with pytest.raises(PlanError, match="fused"):
            compile_plan(tn, tree, frozenset(sliced), tape_engine="native")

    def test_bad_engine_rejected_by_executor(self, case, sliced):
        tn, tree = case
        with pytest.raises(ValueError, match="tape_engine"):
            SlicedExecutor(tn, tree, sliced, fused=True, tape_engine="llvm")

    def test_executor_native_requires_fused(self, case, sliced):
        tn, tree = case
        with pytest.raises(ValueError, match="fused"):
            SlicedExecutor(tn, tree, sliced, tape_engine="native")

    def test_reference_mode_rejects_engine(self, case, sliced):
        tn, tree = case
        with pytest.raises(ValueError, match="compiled"):
            SlicedExecutor(
                tn, tree, sliced, mode="reference", tape_engine="python"
            )

    def test_auto_resolves_by_availability(self, case, sliced, monkeypatch):
        tn, tree = case
        monkeypatch.setattr(tape_module, "native_available", lambda: False)
        plan = compile_plan(
            tn, tree, frozenset(sliced), fused=True, tape_engine="auto"
        )
        assert plan.tape_engine == "python"
        assert plan.native_programs == (None, None)
        monkeypatch.setattr(tape_module, "native_available", lambda: True)
        plan = compile_plan(
            tn, tree, frozenset(sliced), fused=True, tape_engine="auto"
        )
        assert plan.tape_engine == "native"
        assert plan.native_programs[0] is not None

    def test_runtime_fallback_is_bit_identical(
        self, case, sliced, stepwise_value, monkeypatch
    ):
        """``run_native`` declining (numba absent, kernel disarmed, bad
        dtype) must leave the Python walker's result untouched."""
        tn, tree = case
        monkeypatch.setattr(tape_module, "run_native", lambda *args: False)
        executor = SlicedExecutor(
            tn, tree, sliced, fused=True, tape_engine="native"
        )
        assert executor.plan.tape_engine == "native"
        assert executor.amplitude() == stepwise_value
        assert executor.stats.tape_engine == "python"
        assert executor.stats.fused_steps > 0

    def test_run_native_declines_when_disarmed(self, case, sliced, monkeypatch):
        tn, tree = case
        plan = _native_plan(tn, tree, sliced)
        program = plan.native_programs[0]
        live = _leaf_inputs(plan, tn, {ix: 0 for ix in sliced})
        monkeypatch.setattr(tape_module, "_BROKEN", True)
        assert run_native(program, live, StemSlots(), PlanStats()) is False
        assert not native_available()

    def test_kernel_failure_disarms_engine(self, case, sliced, monkeypatch):
        """Any exception inside the native path poisons the engine for
        the process — later calls decline instead of retrying."""
        tn, tree = case
        plan = _native_plan(tn, tree, sliced)
        program = plan.native_programs[0]
        live = _leaf_inputs(plan, tn, {ix: 0 for ix in sliced})
        monkeypatch.setattr(tape_module, "_BROKEN", False)
        monkeypatch.setattr(tape_module, "_HAVE_NUMBA", True)

        def boom(*args, **kwargs):
            raise RuntimeError("kernel fault")

        monkeypatch.setattr(tape_module, "_walk", boom, raising=False)
        before = dict(live)
        assert run_native(program, live, StemSlots(), None) is False
        assert tape_module._BROKEN is True
        # a disarmed engine must not have produced a partial root
        assert set(live) == set(before)

    def test_warm_kernel_tracks_availability(self):
        assert warm_kernel(np.complex128) == native_available()


class TestFakeNativeEngine:
    """The full executor stack through the native dispatch path."""

    @pytest.fixture(autouse=True)
    def fake_native(self, monkeypatch):
        monkeypatch.setattr(tape_module, "run_native", _fake_run_native)

    def test_serial_bit_identical(self, case, sliced, stepwise_value):
        tn, tree = case
        executor = SlicedExecutor(
            tn, tree, sliced, fused=True, tape_engine="native"
        )
        assert executor.amplitude() == stepwise_value
        assert executor.stats.tape_engine == "native"
        assert executor.stats.fused_steps > 0

    def test_uncached_bit_identical(self, case, sliced, stepwise_value):
        tn, tree = case
        executor = SlicedExecutor(
            tn,
            tree,
            sliced,
            fused=True,
            tape_engine="native",
            cache_invariant=False,
        )
        assert executor.amplitude() == stepwise_value

    def test_node_counts_match_stepwise(self, case, sliced):
        tn, tree = case
        plain = SlicedExecutor(tn, tree, sliced)
        native = SlicedExecutor(
            tn, tree, sliced, fused=True, tape_engine="native"
        )
        plain.run()
        native.run()
        assert native.stats.node_counts == plain.stats.node_counts

    def test_batched_matches_python_engine(self, case, sliced):
        """Both tape engines on the same batched plan: exact equality."""
        tn, tree = case
        for group in ([sliced[0]], sliced[:2]):
            python_engine = SlicedExecutor(
                tn,
                tree,
                sliced,
                fused=True,
                batch_indices=group,
                tape_engine="python",
            ).amplitude()
            native_engine = SlicedExecutor(
                tn,
                tree,
                sliced,
                fused=True,
                batch_indices=group,
                tape_engine="native",
            ).amplitude()
            assert native_engine == python_engine, group

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        chunk_size=st.integers(min_value=1, max_value=4),
        batch=st.booleans(),
    )
    @SETTINGS
    def test_property_chunks_and_batches(self, seed, chunk_size, batch):
        tn, tree = _case(num_qubits=5, depth=3, seed=seed)
        sliced = sorted(tn.inner_indices())[:3]
        stepwise = SlicedExecutor(tn, tree, sliced).amplitude()
        kwargs = {"batch_indices": sliced[:1]} if batch else {}
        executor = SlicedExecutor(
            tn,
            tree,
            sliced,
            fused=True,
            tape_engine="native",
            backend=ThreadPoolBackend(max_workers=2, chunk_size=chunk_size),
            **kwargs,
        )
        value = executor.amplitude()
        if batch:
            # batch sweeps accumulate in a different order than the
            # enumerated loop: engines agree exactly, stepwise only approx
            python_engine = SlicedExecutor(
                tn,
                tree,
                sliced,
                fused=True,
                tape_engine="python",
                **kwargs,
            ).amplitude()
            assert value == python_engine
            assert value == pytest.approx(stepwise, abs=1e-10)
        else:
            assert value == stepwise


class TestNativeThroughPool:
    """Native plans ship to pool workers and survive fault recovery."""

    def test_plan_pickles_with_programs(self, case, sliced):
        tn, tree = case
        plan = _native_plan(tn, tree, sliced)
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.tape_engine == "native"
        program = clone.native_programs[0]
        assert program is not None
        assert np.array_equal(program.ops, plan.native_programs[0].ops)

    def test_pool_execution_bit_identical(self, case, sliced, stepwise_value):
        tn, tree = case
        executor = SlicedExecutor(
            tn,
            tree,
            sliced,
            fused=True,
            tape_engine="native",
            backend=SharedMemoryProcessPoolBackend(max_workers=2),
        )
        assert executor.amplitude() == stepwise_value

    def test_fault_recovery_bit_identical(self, case, sliced, stepwise_value):
        tn, tree = case
        injector = FaultInjector([FaultSpec("kill-worker", chunk=2)])
        executor = SlicedExecutor(
            tn,
            tree,
            sliced,
            fused=True,
            tape_engine="native",
            backend=SharedMemoryProcessPoolBackend(max_workers=2),
            fault_policy=FaultPolicy.retrying(max_retries=2),
            fault_injector=injector,
        )
        with executor.session():
            assert executor.amplitude() == stepwise_value
        assert executor.stats.faults >= 1
        assert executor.stats.retries >= 1
        assert injector.fired == [(2, "kill-worker")]
