"""Unit tests of the gate library."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.circuits import gate_matrix, gate_tensor, is_diagonal_gate, register_gate
from repro.circuits.gates import (
    FSIM,
    Gate,
    GateDefinitionError,
    H,
    ISWAP,
    SQRT_ISWAP,
    SW,
    SX,
    SY,
    available_gates,
    gate_num_qubits,
)


def _is_unitary(m: np.ndarray) -> bool:
    return np.allclose(m.conj().T @ m, np.eye(m.shape[0]), atol=1e-10)


PARAMETRIC_DEFAULTS = {
    "rx": (0.7,),
    "ry": (1.1,),
    "rz": (2.3,),
    "u3": (0.4, 1.2, 2.5),
    "fsim": (math.pi / 2, math.pi / 6),
    "cphase": (0.9,),
}


class TestGateMatrices:
    def test_every_registered_gate_is_unitary(self):
        for name in available_gates():
            params = PARAMETRIC_DEFAULTS.get(name, ())
            matrix = gate_matrix(name, params)
            assert _is_unitary(matrix), name

    def test_one_qubit_gates_are_2x2(self):
        for name in available_gates():
            params = PARAMETRIC_DEFAULTS.get(name, ())
            if gate_num_qubits(name) == 1:
                assert gate_matrix(name, params).shape == (2, 2)

    def test_two_qubit_gates_are_4x4(self):
        for name in available_gates():
            params = PARAMETRIC_DEFAULTS.get(name, ())
            if gate_num_qubits(name) == 2:
                assert gate_matrix(name, params).shape == (4, 4)

    def test_hadamard_squares_to_identity(self):
        assert np.allclose(H() @ H(), np.eye(2), atol=1e-12)

    def test_sx_squares_to_x(self):
        x = gate_matrix("x")
        assert np.allclose(SX() @ SX(), x, atol=1e-12)

    def test_sy_squares_to_y(self):
        y = gate_matrix("y")
        assert np.allclose(SY() @ SY(), y, atol=1e-12)

    def test_sw_squares_to_w(self):
        w = (gate_matrix("x") + gate_matrix("y")) / math.sqrt(2.0)
        product = SW() @ SW()
        # allow a global phase difference
        phase = product[0, 0] / w[0, 0] if abs(w[0, 0]) > 1e-12 else product[1, 0] / w[1, 0]
        assert np.allclose(product, w * phase, atol=1e-10)

    def test_s_is_sqrt_z(self):
        s = gate_matrix("s")
        assert np.allclose(s @ s, gate_matrix("z"), atol=1e-12)

    def test_t_is_sqrt_s(self):
        t = gate_matrix("t")
        assert np.allclose(t @ t, gate_matrix("s"), atol=1e-12)

    def test_fsim_zero_angles_is_identity(self):
        assert np.allclose(FSIM(0.0, 0.0), np.eye(4), atol=1e-12)

    def test_fsim_pi_half_is_iswap_like(self):
        m = FSIM(math.pi / 2, 0.0)
        expected = ISWAP().copy()
        expected[1, 2] = expected[2, 1] = -1j
        assert np.allclose(m, expected, atol=1e-12)

    def test_sqrt_iswap_squares_to_iswap(self):
        assert np.allclose(SQRT_ISWAP() @ SQRT_ISWAP(), ISWAP(), atol=1e-12)

    def test_cx_maps_10_to_11(self):
        cx = gate_matrix("cx")
        state = np.zeros(4)
        state[2] = 1.0  # |10>
        out = cx @ state
        assert np.allclose(out, [0, 0, 0, 1])

    def test_cz_phase_only_on_11(self):
        cz = gate_matrix("cz")
        assert cz[3, 3] == -1
        assert np.allclose(np.diag(cz), [1, 1, 1, -1])

    def test_rz_diagonal(self):
        rz = gate_matrix("rz", (1.3,))
        assert np.allclose(rz, np.diag(np.diag(rz)))

    def test_u3_reduces_to_ry(self):
        theta = 0.8
        assert np.allclose(gate_matrix("u3", (theta, 0.0, 0.0)), gate_matrix("ry", (theta,)))


class TestGateTensor:
    def test_two_qubit_tensor_shape(self):
        t = gate_tensor("cz")
        assert t.shape == (2, 2, 2, 2)

    def test_tensor_matches_matrix_reshape(self):
        m = gate_matrix("fsim", (0.3, 0.7))
        t = gate_tensor("fsim", (0.3, 0.7))
        assert np.allclose(t.reshape(4, 4), m)

    def test_one_qubit_tensor_is_matrix(self):
        assert np.allclose(gate_tensor("h"), gate_matrix("h"))


class TestGateErrors:
    def test_unknown_gate_raises(self):
        with pytest.raises(GateDefinitionError):
            gate_matrix("nonexistent")

    def test_wrong_param_count_raises(self):
        with pytest.raises(GateDefinitionError):
            gate_matrix("rx", ())

    def test_gate_wrong_qubit_count_raises(self):
        with pytest.raises(GateDefinitionError):
            Gate("cz", (0,))

    def test_gate_duplicate_qubits_raises(self):
        with pytest.raises(GateDefinitionError):
            Gate("cz", (1, 1))

    def test_register_invalid_arity_raises(self):
        with pytest.raises(GateDefinitionError):
            register_gate("threeq", lambda: np.eye(8), 3)


class TestGateInstances:
    def test_gate_matrix_and_tensor(self):
        g = Gate("fsim", (0, 1), (math.pi / 2, math.pi / 6))
        assert g.num_qubits == 2
        assert g.matrix().shape == (4, 4)
        assert g.tensor().shape == (2, 2, 2, 2)

    def test_gate_params_coerced_to_float(self):
        g = Gate("rx", (0,), (1,))
        assert isinstance(g.params[0], float)

    def test_diagonal_flag(self):
        assert Gate("cz", (0, 1)).is_diagonal
        assert Gate("t", (0,)).is_diagonal
        assert not Gate("h", (0,)).is_diagonal
        assert is_diagonal_gate("rz")

    def test_dagger_inverts_matrix(self):
        cases = [
            Gate("h", (0,)),
            Gate("s", (0,)),
            Gate("t", (0,)),
            Gate("rx", (0,), (0.9,)),
            Gate("fsim", (0, 1), (0.5, 0.2)),
            Gate("sw", (0,)),
            Gate("sqrt_iswap", (0, 1)),
        ]
        for gate in cases:
            product = gate.matrix() @ gate.dagger().matrix()
            assert np.allclose(product, np.eye(product.shape[0]), atol=1e-10), gate

    def test_custom_gate_registration(self):
        register_gate("mytest_phase", lambda: np.diag([1.0, 1j]).astype(complex), 1, 0, diagonal=True)
        assert "mytest_phase" in available_gates()
        assert is_diagonal_gate("mytest_phase")
        g = Gate("mytest_phase", (0,))
        assert np.allclose(g.matrix(), np.diag([1.0, 1j]))
