"""Tests of the pluggable execution-backend layer.

Every backend must agree with the reference einsum oracle on the seed
networks, and — because all backends honour the ordered-accumulation
contract — the thread-pool and shared-memory process-pool backends must be
*bit-identical* to the serial backend for every worker count and chunk
size.  The batched-sweep generalization (``batch_indices`` groups) is
checked against enumerated subtask sums with hypothesis.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.circuits import amplitude, random_brickwork_circuit
from repro.execution import (
    CorrelatedSampler,
    SerialBackend,
    SharedMemoryProcessPoolBackend,
    SlicedExecutor,
    ThreadPoolBackend,
    TreeExecutor,
    contract_tree,
    resolve_backend,
    validate_execution_args,
)
from repro.paths import GreedyOptimizer
from repro.tensornet import amplitude_network, simplify_network

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _case(num_qubits=6, depth=4, seed=13):
    circ = random_brickwork_circuit(num_qubits, depth, seed=seed)
    bits = tuple(int(b) for b in np.random.default_rng(seed).integers(0, 2, num_qubits))
    tn = amplitude_network(circ, list(bits))
    simplify_network(tn)
    tree = GreedyOptimizer(seed=1).tree(tn)
    return tn, tree, amplitude(circ, bits)


@pytest.fixture(scope="module")
def case():
    return _case()


@pytest.fixture(scope="module")
def serial_value(case):
    tn, tree, _ = case
    sliced = sorted(tn.inner_indices())[:4]
    return SlicedExecutor(tn, tree, sliced, backend=SerialBackend()).amplitude()


class TestBackendEquivalence:
    """All backends vs the reference oracle (approx) and vs serial (exact)."""

    @pytest.mark.parametrize(
        "make_backend",
        [
            lambda: SerialBackend(),
            lambda: ThreadPoolBackend(max_workers=2),
            lambda: ThreadPoolBackend(max_workers=3, chunk_size=1),
            lambda: SharedMemoryProcessPoolBackend(max_workers=2),
        ],
        ids=["serial", "threads", "threads-chunk1", "process-pool"],
    )
    def test_backends_match_reference_oracle(self, case, make_backend):
        tn, tree, reference = case
        sliced = sorted(tn.inner_indices())[:4]
        oracle = SlicedExecutor(tn, tree, sliced, mode="reference").amplitude()
        assert oracle == pytest.approx(reference, abs=1e-9)
        executor = SlicedExecutor(tn, tree, sliced, backend=make_backend())
        assert executor.amplitude() == pytest.approx(reference, abs=1e-9)

    def test_process_pool_bit_identical_to_serial(self, case, serial_value):
        tn, tree, _ = case
        sliced = sorted(tn.inner_indices())[:4]
        backend = SharedMemoryProcessPoolBackend(max_workers=2)
        pooled = SlicedExecutor(tn, tree, sliced, backend=backend).amplitude()
        assert pooled == serial_value  # exact: same values, same sum order

    def test_thread_pool_bit_identical_to_serial(self, case, serial_value):
        tn, tree, _ = case
        sliced = sorted(tn.inner_indices())[:4]
        backend = ThreadPoolBackend(max_workers=3)
        threaded = SlicedExecutor(tn, tree, sliced, backend=backend).amplitude()
        assert threaded == serial_value

    @pytest.mark.parametrize("max_workers,chunk_size", [(1, None), (2, 1), (2, 3), (3, 2)])
    def test_process_pool_deterministic_across_chunking(
        self, case, serial_value, max_workers, chunk_size
    ):
        tn, tree, _ = case
        sliced = sorted(tn.inner_indices())[:4]
        backend = SharedMemoryProcessPoolBackend(
            max_workers=max_workers, chunk_size=chunk_size
        )
        assert SlicedExecutor(tn, tree, sliced, backend=backend).amplitude() == serial_value

    def test_process_pool_without_invariant_cache(self, case, serial_value):
        # cache=None ships every leaf buffer instead of the dependent ones
        tn, tree, reference = case
        sliced = sorted(tn.inner_indices())[:4]
        executor = SlicedExecutor(
            tn,
            tree,
            sliced,
            cache_invariant=False,
            backend=SharedMemoryProcessPoolBackend(max_workers=2),
        )
        assert executor.amplitude() == pytest.approx(reference, abs=1e-9)

    def test_process_pool_batched_sweep(self, case):
        tn, tree, _ = case
        sliced = sorted(tn.inner_indices())[:4]
        serial = SlicedExecutor(tn, tree, sliced, batch_indices=sliced[:2]).amplitude()
        pooled = SlicedExecutor(
            tn,
            tree,
            sliced,
            batch_indices=sliced[:2],
            backend=SharedMemoryProcessPoolBackend(max_workers=2),
        ).amplitude()
        assert pooled == serial

    def test_invariant_nodes_still_run_once_with_process_pool(self, case):
        # the cache is warmed in the parent, so workers never recontract
        # slice-invariant subtrees
        tn, tree, _ = case
        sliced = sorted(tn.inner_indices())[:3]
        executor = SlicedExecutor(
            tn, tree, sliced, backend=SharedMemoryProcessPoolBackend(max_workers=2)
        )
        executor.run()
        counts = executor.stats.node_counts
        for node in executor.plan.invariant_nodes:
            assert counts.get(node, 0) == 1

    def test_subset_run_through_backend(self, case, serial_value):
        tn, tree, reference = case
        sliced = sorted(tn.inner_indices())[:4]
        executor = SlicedExecutor(
            tn, tree, sliced, backend=SharedMemoryProcessPoolBackend(max_workers=2)
        )
        total = 0.0 + 0.0j
        half = executor.num_subtasks // 2
        total += complex(executor.run(range(half)).require_data())
        total += complex(executor.run(range(half, executor.num_subtasks)).require_data())
        assert total == pytest.approx(reference, abs=1e-9)

    def test_tree_executor_accepts_backend(self, case):
        tn, tree, reference = case
        inline = TreeExecutor().amplitude(tn, tree)
        routed = TreeExecutor(backend=SerialBackend()).amplitude(tn, tree)
        assert routed == inline == pytest.approx(reference, abs=1e-9)
        helper = contract_tree(tn, tree, backend=SerialBackend())
        assert complex(helper.require_data()) == inline

    def test_planner_execute_plan_with_backend(self):
        from repro.pipeline import SimulationPlanner

        circ = random_brickwork_circuit(6, 4, seed=3)
        reference = amplitude(circ, [0] * 6)
        planner = SimulationPlanner(
            target_rank=5, max_trials=4, seed=0, backend=ThreadPoolBackend(max_workers=2)
        )
        plan = planner.plan_circuit(circ, concrete=True)
        assert planner.execute_plan(plan) == pytest.approx(reference, abs=1e-8)


class TestMultiIndexBatching:
    def test_batch_group_matches_reference(self, case):
        tn, tree, reference = case
        sliced = sorted(tn.inner_indices())[:4]
        for width in (1, 2, 3, 4):
            executor = SlicedExecutor(tn, tree, sliced, batch_indices=sliced[:width])
            assert executor.amplitude() == pytest.approx(reference, abs=1e-9), width

    def test_batch_group_sweep_count(self, case):
        tn, tree, _ = case
        sliced = sorted(tn.inner_indices())[:4]
        executor = SlicedExecutor(tn, tree, sliced, batch_indices=sliced[:2])
        group_size = int(np.prod([tn.size_of(ix) for ix in sliced[:2]]))
        assert executor.num_batched_sweeps * group_size == executor.num_subtasks
        executor.run()
        assert executor.stats.executions == executor.num_batched_sweeps

    def test_batch_group_validation(self, case):
        tn, tree, _ = case
        sliced = sorted(tn.inner_indices())[:2]
        with pytest.raises(ValueError):
            SlicedExecutor(tn, tree, sliced, batch_indices=["nope"])
        with pytest.raises(ValueError):
            SlicedExecutor(tn, tree, sliced, batch_indices=[sliced[0], sliced[0]])
        with pytest.raises(ValueError):
            SlicedExecutor(
                tn, tree, sliced, batch_index=sliced[0], batch_indices=[sliced[1]]
            )

    @SETTINGS
    @given(
        params=st.tuples(
            st.integers(min_value=3, max_value=6),
            st.integers(min_value=2, max_value=4),
            st.integers(min_value=0, max_value=1000),
        ),
        num_sliced=st.integers(min_value=1, max_value=4),
        group_width=st.integers(min_value=1, max_value=4),
    )
    def test_batch_group_matches_enumerated_sums(self, params, num_sliced, group_width):
        qubits, depth, seed = params
        circ = random_brickwork_circuit(qubits, depth, seed=seed)
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, size=qubits).tolist()
        tn = amplitude_network(circ, bits)
        simplify_network(tn)
        if tn.num_tensors < 2:
            return
        tree = GreedyOptimizer(seed=seed).tree(tn)
        inner = sorted(tn.inner_indices())
        num_sliced = min(num_sliced, len(inner))
        if num_sliced == 0:
            return
        picks = rng.choice(len(inner), size=num_sliced, replace=False)
        sliced = [inner[i] for i in picks]
        group = sliced[: min(group_width, len(sliced))]
        enumerated = SlicedExecutor(tn, tree, sliced)
        batched = SlicedExecutor(tn, tree, sliced, batch_indices=group)
        # the batched sweep must equal the sum over the enumerated subtasks
        total = sum(
            complex(enumerated.run([sid]).require_data())
            for sid in range(enumerated.num_subtasks)
        )
        assert batched.amplitude() == pytest.approx(total, abs=1e-9)
        assert batched.amplitude() == pytest.approx(amplitude(circ, bits), abs=1e-8)


class TestLazyPlanCompilation:
    def test_pure_batched_run_skips_per_subtask_plan(self, case):
        tn, tree, reference = case
        sliced = sorted(tn.inner_indices())[:3]
        executor = SlicedExecutor(tn, tree, sliced, batch_index="auto")
        assert executor.amplitude() == pytest.approx(reference, abs=1e-9)
        # a full batched run never needs the enumerated plan or its cache
        assert executor._plan is None
        assert executor._cache is None

    def test_subset_run_compiles_lazily(self, case):
        tn, tree, _ = case
        sliced = sorted(tn.inner_indices())[:3]
        executor = SlicedExecutor(tn, tree, sliced, batch_index="auto")
        executor.run([0, 1])
        assert executor._plan is not None

    def test_run_subtask_compiles_lazily(self, case):
        tn, tree, _ = case
        sliced = sorted(tn.inner_indices())[:3]
        executor = SlicedExecutor(tn, tree, sliced, batch_index="auto")
        assert executor._plan is None
        executor.run_subtask(0)
        assert executor._plan is not None

    def test_plan_property_forces_compilation(self, case):
        tn, tree, _ = case
        sliced = sorted(tn.inner_indices())[:3]
        executor = SlicedExecutor(tn, tree, sliced, batch_index="auto")
        assert executor.plan is not None

    def test_lazy_plan_sees_mutations_before_first_compile(self, case):
        tn, tree, reference = case
        mutated = tn.copy()
        sliced = sorted(mutated.inner_indices())[:2]
        executor = SlicedExecutor(mutated, tree, sliced, batch_index="auto")
        # permute a leaf before the enumerated plan ever compiles
        tid = mutated.tensor_ids[0]
        tensor = mutated.tensor(tid)
        mutated.replace_tensor(tid, tensor.transposed(tuple(reversed(tensor.indices))))
        total = sum(
            complex(executor.run([sid]).require_data())
            for sid in range(executor.num_subtasks)
        )
        assert total == pytest.approx(reference, abs=1e-9)


class TestValidationSymmetry:
    """SlicedExecutor and CorrelatedSampler reject parallel reference mode
    with the identical error."""

    def _message(self, callable_):
        with pytest.raises(ValueError) as err:
            callable_()
        return str(err.value)

    def test_max_workers_rejected_identically(self, case):
        tn, tree, _ = case
        circ = random_brickwork_circuit(4, 2, seed=0)
        sliced = sorted(tn.inner_indices())[:1]
        executor_msg = self._message(
            lambda: SlicedExecutor(tn, tree, sliced, mode="reference", max_workers=2)
        )
        sampler_msg = self._message(
            lambda: CorrelatedSampler(circ, [0], executor_mode="reference", max_workers=2)
        )
        assert executor_msg == sampler_msg

    def test_backend_rejected_identically(self, case):
        tn, tree, _ = case
        circ = random_brickwork_circuit(4, 2, seed=0)
        sliced = sorted(tn.inner_indices())[:1]
        backend = SerialBackend()
        executor_msg = self._message(
            lambda: SlicedExecutor(tn, tree, sliced, mode="reference", backend=backend)
        )
        sampler_msg = self._message(
            lambda: CorrelatedSampler(
                circ, [0], executor_mode="reference", backend=backend
            )
        )
        assert executor_msg == sampler_msg
        tree_msg = self._message(lambda: TreeExecutor(compiled=False, backend=backend))
        assert tree_msg == executor_msg

    def test_unknown_mode_rejected_identically(self, case):
        tn, tree, _ = case
        circ = random_brickwork_circuit(4, 2, seed=0)
        executor_msg = self._message(lambda: SlicedExecutor(tn, tree, (), mode="fast"))
        sampler_msg = self._message(
            lambda: CorrelatedSampler(circ, [0], executor_mode="fast")
        )
        assert executor_msg == sampler_msg

    def test_backend_and_max_workers_mutually_exclusive(self, case):
        tn, tree, _ = case
        circ = random_brickwork_circuit(4, 2, seed=0)
        sliced = sorted(tn.inner_indices())[:1]
        with pytest.raises(ValueError):
            resolve_backend(SerialBackend(), max_workers=2)
        # both constructor entry points fail fast, with the same error
        executor_msg = self._message(
            lambda: SlicedExecutor(
                tn, tree, sliced, backend=SerialBackend(), max_workers=2
            )
        )
        sampler_msg = self._message(
            lambda: CorrelatedSampler(circ, [0], backend=SerialBackend(), max_workers=2)
        )
        assert executor_msg == sampler_msg

    def test_max_workers_shim_resolves_to_thread_pool(self):
        with pytest.warns(DeprecationWarning):
            backend = resolve_backend(max_workers=4)
        assert isinstance(backend, ThreadPoolBackend)
        assert backend.max_workers == 4
        assert isinstance(resolve_backend(), SerialBackend)

    @pytest.mark.parametrize("max_workers", [0, 1])
    def test_low_max_workers_still_warns_and_maps_to_serial(self, max_workers):
        # the shim is deprecated for *any* value, including the ones that
        # resolve to the serial backend
        with pytest.warns(DeprecationWarning):
            backend = resolve_backend(max_workers=max_workers)
        assert isinstance(backend, SerialBackend)

    @pytest.mark.parametrize("max_workers", [0, 1, 2])
    def test_both_passed_rejected_for_any_value(self, max_workers):
        # the conflict check is on presence, not truthiness: max_workers=0
        # must not slip past it
        with pytest.raises(ValueError):
            resolve_backend(SerialBackend(), max_workers=max_workers)
        with pytest.raises(ValueError):
            validate_execution_args(
                "compiled", backend=SerialBackend(), max_workers=max_workers
            )

    def test_reference_mode_rejects_max_workers_zero(self):
        with pytest.raises(ValueError):
            validate_execution_args("reference", max_workers=0)

    def test_validate_accepts_compiled_combinations(self):
        validate_execution_args("compiled", backend=SerialBackend(), max_workers=None)
        validate_execution_args("compiled", backend=None, max_workers=4)
        validate_execution_args("reference")

    def test_pool_parameter_validation(self):
        with pytest.raises(ValueError):
            ThreadPoolBackend(max_workers=0)
        with pytest.raises(ValueError):
            SharedMemoryProcessPoolBackend(max_workers=2, chunk_size=0)


class TestMaxWorkersShimWarnsOnce:
    """Every legacy entry point emits exactly one DeprecationWarning."""

    def _deprecations(self, callable_):
        import warnings as _warnings

        with _warnings.catch_warnings(record=True) as records:
            _warnings.simplefilter("always")
            callable_()
        return [
            record
            for record in records
            if issubclass(record.category, DeprecationWarning)
        ]

    def test_sliced_executor(self, case):
        tn, tree, _ = case
        sliced = sorted(tn.inner_indices())[:2]
        records = self._deprecations(
            lambda: SlicedExecutor(tn, tree, sliced, max_workers=2).amplitude()
        )
        assert len(records) == 1

    def test_tree_executor(self, case):
        tn, tree, reference = case
        records = self._deprecations(
            lambda: TreeExecutor(max_workers=2).amplitude(tn, tree)
        )
        assert len(records) == 1
        with pytest.warns(DeprecationWarning):
            assert TreeExecutor(max_workers=2).amplitude(tn, tree) == pytest.approx(
                reference, abs=1e-9
            )

    def test_contract_tree(self, case):
        tn, tree, reference = case
        records = self._deprecations(lambda: contract_tree(tn, tree, max_workers=2))
        assert len(records) == 1
        with pytest.warns(DeprecationWarning):
            value = complex(contract_tree(tn, tree, max_workers=2).require_data())
        assert value == pytest.approx(reference, abs=1e-9)

    def test_correlated_sampler(self):
        circ = random_brickwork_circuit(6, 4, seed=21)
        kwargs = dict(open_qubits=(1, 4), target_rank=4, max_trials=4, seed=2)

        def build_and_compute():
            # the warning fires at construction, once — not once per batch
            sampler = CorrelatedSampler(circ, max_workers=2, **kwargs)
            sampler.compute_batch((1, 0, 0, 1, 0, 1))
            sampler.compute_batch((0, 1, 1, 0, 1, 0))

        records = self._deprecations(build_and_compute)
        assert len(records) == 1


class TestAutoBatchPick:
    """``batch_index="auto"`` must pick deterministically, ties included."""

    def test_auto_tie_break_is_lexicographically_largest(self, case):
        tn, tree, _ = case
        sliced = sorted(tn.inner_indices())[:4]
        # every index in these circuits has size 2, so the pick is decided
        # entirely by the documented tie-break
        sizes = {ix: tn.size_of(ix) for ix in sliced}
        assert len(set(sizes.values())) == 1
        executor = SlicedExecutor(tn, tree, sliced, batch_index="auto")
        assert executor.batch_indices == (max(sliced),)

    def test_auto_pick_stable_across_constructions_and_orders(self, case):
        tn, tree, _ = case
        sliced = sorted(tn.inner_indices())[:4]
        picks = set()
        for ordering in (sliced, list(reversed(sliced)), sliced[2:] + sliced[:2]):
            executor = SlicedExecutor(tn, tree, ordering, batch_index="auto")
            picks.add(executor.batch_indices)
        assert len(picks) == 1

    def test_auto_prefers_strictly_larger_index(self):
        # a hand-built triangle network with genuinely distinct index
        # sizes: the size key must dominate the lexicographic tie-break
        # (index "a" sorts last, but "j" is the largest)
        from repro.tensornet import Tensor, TensorNetwork

        rng = np.random.default_rng(5)
        sizes = {"j": 4, "k": 3, "a": 2}
        tn = TensorNetwork()
        tn.add_tensor(Tensor(("j", "k"), data=rng.normal(size=(4, 3)), sizes=sizes))
        tn.add_tensor(Tensor(("k", "a"), data=rng.normal(size=(3, 2)), sizes=sizes))
        tn.add_tensor(Tensor(("a", "j"), data=rng.normal(size=(2, 4)), sizes=sizes))
        tree = GreedyOptimizer(seed=1).tree(tn)
        executor = SlicedExecutor(tn, tree, {"j", "k", "a"}, batch_index="auto")
        assert executor.batch_indices == ("j",)


class TestSampler:
    def test_sampler_batches_agree_across_backends(self):
        circ = random_brickwork_circuit(6, 4, seed=21)
        base = (1, 0, 0, 1, 0, 1)
        kwargs = dict(open_qubits=(1, 4), target_rank=4, max_trials=4, seed=2)
        serial = CorrelatedSampler(circ, **kwargs).compute_batch(base)
        pooled = CorrelatedSampler(
            circ, backend=SharedMemoryProcessPoolBackend(max_workers=2), **kwargs
        ).compute_batch(base)
        np.testing.assert_array_equal(serial.amplitudes, pooled.amplitudes)
