"""Tests of the rank-1/rank-2 absorption preprocessing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import Circuit, amplitude, random_brickwork_circuit, grid_circuit
from repro.tensornet import (
    Tensor,
    TensorNetwork,
    absorb_rank_one,
    absorb_rank_two,
    amplitude_network,
    simplify_network,
)


class TestValuePreservation:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_simplified_network_gives_same_amplitude(self, seed):
        circ = random_brickwork_circuit(5, 4, seed=seed)
        bits = [(seed >> q) & 1 for q in range(5)]
        tn = amplitude_network(circ, bits)
        report = simplify_network(tn)
        value = complex(tn.contract_all().require_data()) * report.scalar_prefactor
        assert value == pytest.approx(amplitude(circ, bits), abs=1e-9)

    def test_open_network_preserved(self):
        circ = random_brickwork_circuit(3, 3, seed=5)
        from repro.tensornet import CircuitToTensorNetwork

        result = CircuitToTensorNetwork().convert(circ)
        tn = result.network
        before = tn.contract_all()
        report = simplify_network(tn)
        after = tn.contract_all()
        order = before.indices
        assert np.allclose(
            before.data, after.transposed(order).data * report.scalar_prefactor, atol=1e-9
        )

    def test_grid_circuit_value_preserved(self):
        circ = grid_circuit(2, 3, cycles=2, seed=1)
        bits = [0] * 6
        tn = amplitude_network(circ, bits)
        report = simplify_network(tn)
        value = complex(tn.contract_all().require_data()) * report.scalar_prefactor
        assert value == pytest.approx(amplitude(circ, bits), abs=1e-9)


class TestReduction:
    def test_tensor_count_strictly_decreases(self):
        circ = random_brickwork_circuit(5, 4, seed=1)
        tn = amplitude_network(circ, [0] * 5)
        before = tn.num_tensors
        report = simplify_network(tn)
        assert tn.num_tensors < before
        assert report.initial_tensors == before
        assert report.final_tensors == tn.num_tensors
        assert report.tensors_removed == before - tn.num_tensors

    def test_no_rank_one_tensors_left_closed_network(self):
        circ = random_brickwork_circuit(5, 4, seed=2)
        tn = amplitude_network(circ, [0] * 5)
        simplify_network(tn)
        assert all(tn.tensor(tid).ndim >= 1 for tid in tn.tensor_ids)
        # the only allowed low-rank leftovers are tensors carrying open
        # indices; a closed network must have none of rank <= 1 unless the
        # whole network collapsed to a scalar
        if tn.num_tensors > 1:
            assert all(tn.tensor(tid).ndim > 2 or tn.tensor(tid).ndim >= 1 for tid in tn)

    def test_rank1_pass_only(self):
        circ = random_brickwork_circuit(4, 2, seed=3)
        tn = amplitude_network(circ, [0] * 4)
        before = tn.num_tensors
        moved = absorb_rank_one(tn)
        assert moved > 0
        assert tn.num_tensors < before
        assert tn.num_tensors >= 1

    def test_rank2_disabled(self):
        circ = random_brickwork_circuit(4, 2, seed=3)
        tn = amplitude_network(circ, [0] * 4)
        report = simplify_network(tn, absorb_rank2=False)
        assert report.rank2_absorbed == 0

    def test_abstract_network_simplification(self):
        circ = random_brickwork_circuit(5, 4, seed=4)
        concrete = amplitude_network(circ, [0] * 5, concrete=True)
        abstract = amplitude_network(circ, [0] * 5, concrete=False)
        simplify_network(concrete)
        simplify_network(abstract)
        # same structural outcome regardless of whether data is attached
        assert concrete.num_tensors == abstract.num_tensors
        assert set(concrete.indices) == set(abstract.indices)


class TestEdgeCases:
    def test_open_rank1_tensor_kept(self):
        tn = TensorNetwork()
        tn.add_tensor(Tensor(("a",), data=np.array([1.0, 2.0])))
        tn.add_tensor(Tensor(("a", "b"), data=np.eye(2)))
        # 'b' is open: the rank-1 'a' vector is absorbed, the result keeps b
        simplify_network(tn)
        assert tn.num_tensors == 1
        assert tn.output_indices() == frozenset({"b"})

    def test_disconnected_scalar_folded_into_prefactor(self):
        tn = TensorNetwork()
        tn.add_tensor(Tensor((), data=np.array(2.0 + 0j)))
        tn.add_tensor(Tensor(("a",), data=np.array([1.0, 0.0])))
        tn.add_tensor(Tensor(("a",), data=np.array([3.0, 0.0])))
        report = simplify_network(tn)
        assert report.scalar_prefactor == pytest.approx(2.0 + 0j)

    def test_two_tensor_network_fully_collapses(self):
        tn = TensorNetwork()
        tn.add_tensor(Tensor(("a",), data=np.array([1.0, 2.0])))
        tn.add_tensor(Tensor(("a",), data=np.array([3.0, 4.0])))
        simplify_network(tn)
        # collapses to a single scalar tensor or an empty network with prefactor
        assert tn.num_tensors <= 1
