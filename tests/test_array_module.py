"""The array-module seam: pluggable kernels, bit-identity, and pricing.

The seam's contract has two halves, and both are tested here:

* the default :class:`NumpyModule` path is **bit-identical** to the
  pre-seam numpy calls — pinned against hard-coded golden amplitudes
  recorded at the pre-seam HEAD and with a hypothesis property comparing
  seamed execution to the default across seeds, modes and chunk sizes;
* non-numpy modules run the same compiled plan through the host-staging
  contract (leaves/accumulation host-side, kernels on the module) and are
  allclose-gated — exercised with :class:`TorchModule` when torch is
  installed (the CI ``tests-torch`` leg) and with a numpy-backed fake
  "device" module everywhere else.

The satellites ride along: backend/module validation errors, dtype
derivation from the leaves, module-qualified calibration keys with
progressive fallback, and the :class:`DeviceSpec` analytic pricing.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.circuits import random_brickwork_circuit
from repro.costs.calibration import CalibratedCostModel, CalibrationRecord
from repro.costs.model import AnalyticCostModel
from repro.execution import (
    NUMPY_MODULE,
    ArrayModule,
    NumpyModule,
    PlanError,
    SerialBackend,
    SharedMemoryProcessPoolBackend,
    SlicedExecutor,
    ThreadPoolBackend,
    TorchModule,
    compile_plan,
    resolve_array_module,
    validate_execution_args,
)
from repro.hardware.spec import GENERIC_GPU, DeviceSpec
from repro.paths import GreedyOptimizer
from repro.tensornet import amplitude_network, simplify_network

SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

#: Amplitudes recorded at the pre-seam HEAD (commit 2bd9333) with the
#: recipe of :func:`_case` — the NumpyModule path must reproduce these
#: bit for bit, on every mode.
GOLDEN = {
    13: complex(0.029431242362886093, 0.03588207209882284),
    29: complex(-0.09231979847578695, -0.062205940336102605),
    47: complex(0.026284952525787646, 0.003410798205459625),
}


def _case(seed=13, num_qubits=6, depth=4):
    circ = random_brickwork_circuit(num_qubits, depth, seed=seed)
    bits = tuple(int(b) for b in np.random.default_rng(seed).integers(0, 2, num_qubits))
    tn = amplitude_network(circ, list(bits))
    simplify_network(tn)
    tree = GreedyOptimizer(seed=1).tree(tn)
    sliced = sorted(tn.inner_indices())[:3]
    return tn, tree, sliced


def _cast_network(tn, dtype):
    """Cast every concrete leaf of ``tn`` to ``dtype`` in place."""
    for tid, tensor in tn.tensors().items():
        if tensor.data is not None:
            tn.replace_tensor(tid, tensor.with_data(tensor.data.astype(dtype)))


class FakeDeviceModule(NumpyModule):
    """A numpy-backed module that *reports* as a non-host device.

    Every kernel is the real numpy one (so execution works and stays
    bit-identical), but ``name``/``device`` make the validation, engine
    resolution and calibration layers treat it as an accelerator — the
    device plumbing is testable without any GPU or torch install.
    """

    name = "fake"
    device = "cuda"
    supports_native_tape = False


# ----------------------------------------------------------------------
# tentpole: NumpyModule bit-identity
# ----------------------------------------------------------------------
class TestNumpyModuleBitIdentity:
    @pytest.mark.parametrize("seed", sorted(GOLDEN))
    @pytest.mark.parametrize("fused", [False, True])
    def test_matches_pre_seam_goldens_exactly(self, seed, fused):
        tn, tree, sliced = _case(seed)
        amp = SlicedExecutor(tn, tree, sliced, fused=fused).amplitude()
        assert amp == GOLDEN[seed]  # bitwise, no tolerance

    @pytest.mark.parametrize("seed", sorted(GOLDEN))
    def test_explicit_module_matches_goldens_exactly(self, seed):
        tn, tree, sliced = _case(seed)
        amp = SlicedExecutor(
            tn, tree, sliced, array_module=NumpyModule()
        ).amplitude()
        assert amp == GOLDEN[seed]

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        fused=st.booleans(),
        chunk_size=st.integers(min_value=1, max_value=5),
    )
    @SETTINGS
    def test_seamed_execution_is_bitwise_default(self, seed, fused, chunk_size):
        """Explicit NumpyModule + threads + fusion ≡ default stepwise serial."""
        tn, tree, sliced = _case(seed, num_qubits=5, depth=3)
        baseline = SlicedExecutor(tn, tree, sliced).amplitude()
        seamed = SlicedExecutor(
            tn,
            tree,
            sliced,
            fused=fused,
            array_module="numpy",
            backend=ThreadPoolBackend(max_workers=2, chunk_size=chunk_size),
        ).amplitude()
        assert seamed == baseline

    def test_stats_record_the_module(self):
        tn, tree, sliced = _case()
        executor = SlicedExecutor(tn, tree, sliced)
        executor.amplitude()
        assert executor.stats.array_module == "numpy"
        assert executor.array_module is NUMPY_MODULE


# ----------------------------------------------------------------------
# tentpole: a non-host module through the host-staging contract
# ----------------------------------------------------------------------
class TestFakeDeviceModule:
    @pytest.mark.parametrize("fused", [False, True])
    @pytest.mark.parametrize(
        "backend", [None, lambda: ThreadPoolBackend(max_workers=2)]
    )
    def test_device_module_matches_goldens(self, fused, backend):
        tn, tree, sliced = _case()
        executor = SlicedExecutor(
            tn,
            tree,
            sliced,
            fused=fused,
            array_module=FakeDeviceModule(),
            backend=backend() if backend is not None else None,
        )
        # the fake module's kernels ARE numpy, so even the allclose gate
        # is exact here — what's exercised is the staging/dispatch path
        assert executor.amplitude() == GOLDEN[13]
        assert executor.stats.array_module == "fake"

    def test_auto_engine_resolves_to_python_walker(self):
        tn, tree, sliced = _case()
        executor = SlicedExecutor(
            tn, tree, sliced, fused=True, array_module=FakeDeviceModule()
        )
        executor.amplitude()
        plan = executor.plan
        assert plan.array_module.name == "fake"
        assert plan._tape_engine == "python"

    def test_explicit_native_engine_is_rejected(self):
        tn, tree, sliced = _case()
        with pytest.raises(ValueError, match="numpy array module"):
            SlicedExecutor(
                tn,
                tree,
                sliced,
                fused=True,
                tape_engine="native",
                array_module=FakeDeviceModule(),
            )
        with pytest.raises(PlanError, match="numpy array module"):
            compile_plan(
                tn,
                tree,
                sliced,
                fused=True,
                tape_engine="native",
                array_module=FakeDeviceModule(),
            )


# ----------------------------------------------------------------------
# satellite 1: backend × module validation
# ----------------------------------------------------------------------
class TestBackendModuleValidation:
    def test_process_pool_rejects_device_module(self):
        tn, tree, sliced = _case()
        backend = SharedMemoryProcessPoolBackend(max_workers=2)
        with pytest.raises(ValueError, match="Supported combinations"):
            SlicedExecutor(
                tn, tree, sliced, backend=backend, array_module=FakeDeviceModule()
            )

    def test_validate_execution_args_names_the_module(self):
        backend = SharedMemoryProcessPoolBackend(max_workers=2)
        with pytest.raises(ValueError, match="'fake'"):
            validate_execution_args(
                "compiled", backend=backend, array_module=FakeDeviceModule()
            )

    def test_reference_mode_rejects_device_module(self):
        with pytest.raises(ValueError, match="host-numpy"):
            validate_execution_args("reference", array_module=FakeDeviceModule())

    def test_host_module_is_fine_everywhere(self):
        backend = SharedMemoryProcessPoolBackend(max_workers=2)
        validate_execution_args("compiled", backend=backend, array_module=NUMPY_MODULE)
        validate_execution_args("compiled", backend=SerialBackend(), array_module=None)

    def test_serial_and_threads_accept_device_module(self):
        validate_execution_args(
            "compiled", backend=SerialBackend(), array_module=FakeDeviceModule()
        )
        validate_execution_args(
            "compiled",
            backend=ThreadPoolBackend(max_workers=2),
            array_module=FakeDeviceModule(),
        )

    def test_resolve_array_module_errors(self):
        with pytest.raises(ValueError, match="unknown array module"):
            resolve_array_module("no-such-module")
        with pytest.raises(TypeError):
            resolve_array_module(42)
        assert resolve_array_module(None) is NUMPY_MODULE
        assert resolve_array_module("numpy") is NUMPY_MODULE
        module = FakeDeviceModule()
        assert resolve_array_module(module) is module


# ----------------------------------------------------------------------
# satellite 2/3: dtype derivation and the dtype matrix
# ----------------------------------------------------------------------
class TestDtypeMatrix:
    @pytest.mark.parametrize("dtype", [np.complex64, np.complex128])
    @pytest.mark.parametrize("fused", [False, True])
    @pytest.mark.parametrize(
        "make_backend", [None, lambda: ThreadPoolBackend(max_workers=2)]
    )
    def test_dtype_runs_end_to_end(self, dtype, fused, make_backend):
        tn, tree, sliced = _case()
        _cast_network(tn, dtype)
        executor = SlicedExecutor(
            tn,
            tree,
            sliced,
            fused=fused,
            tape_engine="auto",
            backend=make_backend() if make_backend is not None else None,
        )
        result = executor.run()
        assert result.data.dtype == np.dtype(dtype)
        tolerance = 1e-5 if dtype == np.complex64 else 1e-12
        assert complex(result.data.reshape(())) == pytest.approx(
            GOLDEN[13], rel=tolerance, abs=tolerance
        )

    @pytest.mark.parametrize("dtype", [np.complex64, np.complex128])
    def test_modes_agree_bitwise_per_dtype(self, dtype):
        tn, tree, sliced = _case(seed=29)
        _cast_network(tn, dtype)
        stepwise = SlicedExecutor(tn, tree, sliced).amplitude()
        fused = SlicedExecutor(tn, tree, sliced, fused=True).amplitude()
        threads = SlicedExecutor(
            tn, tree, sliced, fused=True, backend=ThreadPoolBackend(max_workers=2)
        ).amplitude()
        assert fused == stepwise
        assert threads == stepwise

    def test_plan_dtype_derived_from_leaves(self):
        tn, tree, sliced = _case()
        _cast_network(tn, np.complex64)
        plan = compile_plan(tn, tree, sliced)
        assert plan.dtype == np.dtype(np.complex64)

    def test_explicit_dtype_wins_over_derived(self):
        tn, tree, sliced = _case()
        plan = compile_plan(tn, tree, sliced, dtype=np.complex64)
        assert plan.dtype == np.dtype(np.complex64)

    def test_mixed_leaves_derive_result_type(self):
        tn, tree, sliced = _case()
        _cast_network(tn, np.complex64)
        # upcast a single leaf: the derived dtype must follow result_type
        tid, tensor = next(
            (t, x) for t, x in tn.tensors().items() if x.data is not None
        )
        tn.replace_tensor(tid, tensor.with_data(tensor.data.astype(np.complex128)))
        plan = compile_plan(tn, tree, sliced)
        assert plan.dtype == np.dtype(np.complex128)


# ----------------------------------------------------------------------
# satellite 3/5: TorchModule (runs on the CI tests-torch leg)
# ----------------------------------------------------------------------
class TestTorchModule:
    @pytest.fixture(autouse=True)
    def _torch(self):
        pytest.importorskip("torch")

    @pytest.mark.parametrize("seed", sorted(GOLDEN))
    @pytest.mark.parametrize("fused", [False, True])
    def test_allclose_to_goldens(self, seed, fused):
        tn, tree, sliced = _case(seed)
        amp = SlicedExecutor(
            tn, tree, sliced, fused=fused, array_module="torch"
        ).amplitude()
        assert amp == pytest.approx(GOLDEN[seed], rel=1e-10, abs=1e-12)

    def test_threads_allclose_to_serial(self):
        tn, tree, sliced = _case()
        serial = SlicedExecutor(
            tn, tree, sliced, array_module="torch"
        ).amplitude()
        threads = SlicedExecutor(
            tn,
            tree,
            sliced,
            array_module="torch",
            backend=ThreadPoolBackend(max_workers=2),
        ).amplitude()
        assert threads == pytest.approx(serial, rel=1e-12, abs=1e-14)

    def test_complex64_through_torch(self):
        tn, tree, sliced = _case()
        _cast_network(tn, np.complex64)
        result = SlicedExecutor(
            tn, tree, sliced, fused=True, array_module="torch"
        ).run()
        assert result.data.dtype == np.dtype(np.complex64)
        assert complex(result.data.reshape(())) == pytest.approx(
            GOLDEN[13], rel=1e-5, abs=1e-5
        )

    def test_process_pool_rejected(self):
        tn, tree, sliced = _case()
        with pytest.raises(ValueError, match="Supported combinations"):
            SlicedExecutor(
                tn,
                tree,
                sliced,
                array_module="torch",
                backend=SharedMemoryProcessPoolBackend(max_workers=2),
            )

    def test_module_roundtrip_helpers(self):
        module = TorchModule()
        host = np.arange(6, dtype=np.complex128).reshape(2, 3)
        dev = module.from_host(host)
        assert module.to_host(dev).tolist() == host.tolist()
        assert module.size_of(dev) == 6
        assert module.nbytes_of(dev) == host.nbytes


# ----------------------------------------------------------------------
# satellite: calibration keys and fallback
# ----------------------------------------------------------------------
class TestModuleCalibration:
    def _record(self, backend="serial", engine="python", module="numpy"):
        return CalibrationRecord(
            backend=backend,
            subtask_flops=1e6,
            num_steps=10,
            seconds=(1e-3, 1.1e-3),
            tape_engine=engine,
            array_module=module,
        )

    def test_key_shapes(self):
        assert self._record().key == "serial"
        assert self._record(engine="native").key == "serial+native"
        assert self._record(module="torch").key == "serial+python+torch"
        assert (
            self._record(engine="native", module="cupy").key == "serial+native+cupy"
        )

    def test_stats_produce_module_qualified_records(self):
        tn, tree, sliced = _case()
        executor = SlicedExecutor(tn, tree, sliced, array_module=FakeDeviceModule())
        executor.amplitude()
        record = executor.calibration_record()
        assert record.array_module == "fake"
        assert record.key == "serial+python+fake"

    def test_progressive_fallback_drops_components(self):
        model = CalibratedCostModel.fit([self._record()])
        tn, tree, sliced = _case()
        base = model.subtask_seconds(tree, sliced, backend="serial")
        # no torch coefficients: "serial+python+torch" → "serial+python"
        # → "serial", landing on the host fit rather than erroring
        assert model.subtask_seconds(
            tree, sliced, backend="serial+python+torch"
        ) == base

    def test_module_coefficients_win_over_fallback(self):
        slow = CalibrationRecord(
            backend="serial",
            subtask_flops=1e6,
            num_steps=10,
            seconds=(2e-3,),
            array_module="torch",
        )
        model = CalibratedCostModel.fit([self._record(), slow])
        tn, tree, sliced = _case()
        host = model.subtask_seconds(tree, sliced, backend="serial")
        device = model.subtask_seconds(tree, sliced, backend="serial+python+torch")
        assert device > host

    def test_bench_json_roundtrip(self):
        payload = {
            "calibration": {
                "subtask_flops": 1e6,
                "num_steps": 10,
                "backends": {
                    "serial": {"subtask_seconds": [1e-3]},
                    "serial+python+torch": {"subtask_seconds": [5e-3]},
                },
            }
        }
        model = CalibratedCostModel.from_bench_json(payload)
        assert set(model.backends) == {"serial", "serial+python+torch"}


# ----------------------------------------------------------------------
# satellite 6: device-spec analytic pricing
# ----------------------------------------------------------------------
class TestDevicePricing:
    def test_device_spec_defaults(self):
        assert GENERIC_GPU.effective_flops == pytest.approx(
            GENERIC_GPU.device_flops * GENERIC_GPU.gemm_peak_fraction
        )
        fat = GENERIC_GPU.with_overrides(pcie_bandwidth=50e9)
        assert fat.staging_seconds(1e9) == pytest.approx(0.02)
        assert GENERIC_GPU.staging_seconds(0.0) == 0.0

    def test_module_qualified_backend_prices_device(self):
        tn, tree, sliced = _case()
        model = AnalyticCostModel()
        host = model.subtask_seconds(tree, frozenset(sliced))
        device = model.subtask_seconds(
            tree, frozenset(sliced), backend="serial+python+torch"
        )
        assert device != host
        assert device >= model.staging_seconds(tree, frozenset(sliced)) > 0.0

    def test_numpy_qualified_backend_stays_host(self):
        tn, tree, sliced = _case()
        model = AnalyticCostModel()
        host = model.subtask_seconds(tree, frozenset(sliced))
        assert (
            model.subtask_seconds(
                tree, frozenset(sliced), backend="serial+python+numpy"
            )
            == host
        )
        assert (
            model.subtask_seconds(tree, frozenset(sliced), backend="serial+native")
            == host
        )

    def test_slower_pcie_raises_the_prediction(self):
        tn, tree, sliced = _case()
        fast = AnalyticCostModel()
        slow = AnalyticCostModel(
            device_spec=GENERIC_GPU.with_overrides(pcie_bandwidth=1e6)
        )
        key = "serial+python+torch"
        assert slow.subtask_seconds(
            tree, frozenset(sliced), backend=key
        ) > fast.subtask_seconds(tree, frozenset(sliced), backend=key)

    def test_calibrated_fallback_reaches_device_pricing(self):
        record = CalibrationRecord(
            backend="threads", subtask_flops=1e6, num_steps=10, seconds=(1e-3,)
        )
        analytic = AnalyticCostModel()
        model = CalibratedCostModel.fit([record], fallback=analytic)
        tn, tree, sliced = _case()
        # "serial+python+torch" has no fit and no droppable prefix match,
        # so the analytic fallback prices it — with the device roofline
        predicted = model.subtask_seconds(
            tree, frozenset(sliced), backend="serial+python+torch"
        )
        assert predicted == analytic.subtask_seconds(
            tree, frozenset(sliced), backend="serial+python+torch"
        )


class TestArrayModuleProtocol:
    def test_abstract_module_raises(self):
        module = ArrayModule()
        with pytest.raises(NotImplementedError):
            module.empty((2, 2), np.complex128)

    def test_numpy_module_identity_staging(self):
        a = np.arange(4.0)
        assert NUMPY_MODULE.to_host(a) is a
        assert NUMPY_MODULE.from_host(a) is a
        assert NUMPY_MODULE.is_host
        assert not FakeDeviceModule().is_host

    def test_owner_walks_views(self):
        base = np.arange(12.0)
        view = base.reshape(3, 4)[1:]
        assert NUMPY_MODULE.owner_of(view) is base

    def test_batched_gemm_matches_loop_of_dots(self):
        rng = np.random.default_rng(7)
        a = rng.standard_normal((4, 3, 5)) + 1j * rng.standard_normal((4, 3, 5))
        b = rng.standard_normal((4, 5, 2)) + 1j * rng.standard_normal((4, 5, 2))
        out = np.empty((4, 3, 2), dtype=np.complex128)
        NUMPY_MODULE.batched_gemm(a, b, out)
        expected = np.stack([np.dot(a[i], b[i]) for i in range(4)])
        assert (out == expected).all()
