"""Shared fixtures for the test suite.

The fixtures build a ladder of workloads:

* tiny brickwork circuits whose amplitudes can be checked exactly against
  the dense state-vector simulator,
* a mid-size 2-D grid RQC whose (abstract) tensor network exercises the
  planning stack — path search, stem extraction, slicing — without touching
  numerical data,
* ready-made contraction trees and cost models derived from them.
"""

from __future__ import annotations

import gc
import os

import pytest

from repro.circuits import grid_circuit, random_brickwork_circuit
from repro.core import SlicingCostModel, extract_stem
from repro.paths import GreedyOptimizer, HyperOptimizer
from repro.tensornet import amplitude_network, circuit_to_tensor_network, simplify_network

# ----------------------------------------------------------------------
# /dev/shm + checkpoint-store leak audit
#
# Every test that opens a shared-memory process pool must leave /dev/shm
# exactly as it found it — even when the test injected worker crashes or
# aborted a session mid-run.  Implemented as runtest hooks rather than an
# autouse fixture so hypothesis @given tests (which forbid
# function-scoped fixtures) are audited too.  Anonymous segments created
# by multiprocessing.shared_memory carry the "psm_" prefix, which keeps
# the audit blind to unrelated tenants of /dev/shm.
#
# The same teardown hook audits every checkpoint store the test touched
# (repro.execution.checkpoint registers store roots in _AUDIT_ROOTS): no
# orphaned "*.tmp" (a torn atomic write must be swept or never leak past
# the writer) and no "*.lock" without a live run (an unreleased job lock
# would wedge the next resume behind a dead-pid steal).
# ----------------------------------------------------------------------
_SHM_DIR = "/dev/shm"


def _shm_segments() -> frozenset:
    if not os.path.isdir(_SHM_DIR):
        return frozenset()
    return frozenset(
        name for name in os.listdir(_SHM_DIR) if name.startswith("psm_")
    )


def _checkpoint_orphans() -> list:
    from repro.execution.checkpoint import _AUDIT_ROOTS

    orphans = []
    for root in sorted(_AUDIT_ROOTS):
        if not os.path.isdir(root):
            continue
        for dirpath, _dirnames, filenames in os.walk(root):
            for name in filenames:
                if name.endswith(".tmp") or name.endswith(".lock"):
                    orphans.append(os.path.join(dirpath, name))
    return orphans


def pytest_runtest_setup(item):
    item._shm_audit_before = _shm_segments()


def pytest_runtest_teardown(item):
    before = getattr(item, "_shm_audit_before", None)
    if before is None:
        return
    leaked = _shm_segments() - before
    if leaked:
        # a dropped-but-uncollected session still owns its segments
        # through its weakref.finalize; give it one gc pass before
        # declaring a leak
        gc.collect()
        leaked = _shm_segments() - before
    if leaked:
        pytest.fail(
            f"test leaked shared-memory segments: {sorted(leaked)}",
            pytrace=False,
        )
    orphans = _checkpoint_orphans()
    if orphans:
        pytest.fail(
            f"test left orphaned checkpoint tmp/lock files: {sorted(orphans)}",
            pytrace=False,
        )


@pytest.fixture(scope="session")
def small_circuit():
    """A 5-qubit brickwork circuit, verifiable against the state vector."""
    return random_brickwork_circuit(5, 4, seed=11)


@pytest.fixture(scope="session")
def small_bitstring():
    return (0, 1, 0, 1, 1)


@pytest.fixture(scope="session")
def small_network(small_circuit, small_bitstring):
    """Concrete closed network of one amplitude of the small circuit."""
    tn = amplitude_network(small_circuit, list(small_bitstring), concrete=True)
    simplify_network(tn)
    return tn


@pytest.fixture(scope="session")
def small_tree(small_network):
    """A contraction tree for the small network."""
    return GreedyOptimizer(seed=3).tree(small_network)


@pytest.fixture(scope="session")
def grid_network():
    """Abstract (planning-only) network of a 4x5, 8-cycle grid RQC amplitude."""
    circ = grid_circuit(4, 5, cycles=8, seed=3)
    tn = amplitude_network(circ, [0] * circ.num_qubits, concrete=False)
    simplify_network(tn)
    return tn


@pytest.fixture(scope="session")
def grid_tree(grid_network):
    """A good contraction tree of the grid network."""
    return HyperOptimizer(max_trials=8, seed=1).search(grid_network)


@pytest.fixture(scope="session")
def grid_stem(grid_tree):
    return extract_stem(grid_tree)


@pytest.fixture(scope="session")
def grid_cost_model(grid_tree):
    return SlicingCostModel(grid_tree)


@pytest.fixture(scope="session")
def grid_target_rank(grid_tree):
    """A slicing target that forces a non-trivial slicing set on the grid tree."""
    return max(grid_tree.max_rank() - 4, 4)
