"""Equivalence tests of the compiled contraction plans.

The compiled, cached, batched and pooled executors must all agree — bit for
close — with the reference einsum walker (and, transitively, with the dense
state-vector simulator) for any network, tree and slicing set.  These tests
check that exhaustively on small circuits and with hypothesis over random
ones, including the two structural edge cases: the empty slicing set
(everything slice-invariant) and a slicing set touching every leaf (nothing
slice-invariant).
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.circuits import amplitude, random_brickwork_circuit
from repro.core import slice_dependent_nodes
from repro.execution import (
    PlanError,
    PlanStats,
    SlicedExecutor,
    TreeExecutor,
    compile_plan,
)
from repro.paths import GreedyOptimizer
from repro.tensornet import amplitude_network, simplify_network

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _case(num_qubits=6, depth=4, seed=13, bits=None):
    circ = random_brickwork_circuit(num_qubits, depth, seed=seed)
    if bits is None:
        bits = tuple(int(b) for b in np.random.default_rng(seed).integers(0, 2, num_qubits))
    tn = amplitude_network(circ, list(bits))
    simplify_network(tn)
    tree = GreedyOptimizer(seed=1).tree(tn)
    return tn, tree, amplitude(circ, bits)


@pytest.fixture(scope="module")
def case():
    return _case()


def _leaf_cover_slicing(tn, tree):
    """A slicing set of inner indices touching every leaf (greedy cover)."""
    inner = sorted(tn.inner_indices())
    uncovered = set(range(tree.num_leaves))
    cover = []
    while uncovered and inner:
        best = max(
            inner,
            key=lambda ix: len(
                {tree.leaf_of_tid(t) for t in tn.index_owners(ix)} & uncovered
            ),
        )
        covered = {tree.leaf_of_tid(t) for t in tn.index_owners(best)} & uncovered
        if not covered:
            break
        cover.append(best)
        inner.remove(best)
        uncovered -= covered
    return cover, uncovered


class TestCompiledPlanEquivalence:
    def test_all_modes_match_reference_and_statevector(self, case):
        tn, tree, reference = case
        sliced = sorted(tn.inner_indices())[:3]
        ref = SlicedExecutor(tn, tree, sliced, mode="reference").amplitude()
        assert ref == pytest.approx(reference, abs=1e-9)
        for kwargs in (
            dict(),
            dict(cache_invariant=False),
            dict(batch_index="auto"),
            dict(batch_index=sliced[0]),
            dict(batch_indices=sliced[:2]),
            dict(batch_indices=tuple(sliced)),
            dict(max_workers=2),
            dict(batch_index="auto", max_workers=2),
        ):
            executor = SlicedExecutor(tn, tree, sliced, **kwargs)
            assert executor.amplitude() == pytest.approx(reference, abs=1e-9), kwargs

    def test_exhaustive_small_slicing_sets(self, case):
        tn, tree, reference = case
        inner = sorted(tn.inner_indices())[:4]
        for r in range(len(inner) + 1):
            for combo in itertools.combinations(inner, r):
                executor = SlicedExecutor(tn, tree, combo)
                assert executor.amplitude() == pytest.approx(reference, abs=1e-9), combo

    def test_empty_slicing_set(self, case):
        tn, tree, reference = case
        executor = SlicedExecutor(tn, tree, ())
        assert executor.num_subtasks == 1
        assert executor.amplitude() == pytest.approx(reference, abs=1e-9)
        # with nothing sliced, everything is invariant and cached whole
        assert executor.plan.dependent_nodes == frozenset()
        assert executor.plan.frontier == frozenset({tree.root})

    def test_all_leaves_sliced(self, case):
        tn, tree, reference = case
        cover, uncovered = _leaf_cover_slicing(tn, tree)
        assert not uncovered, "workload must admit a leaf-covering slicing set"
        executor = SlicedExecutor(tn, tree, cover)
        # nothing is slice-invariant: the cache can hold nothing
        assert executor.plan.invariant_nodes == frozenset()
        assert executor.plan.frontier == frozenset()
        assert executor.amplitude() == pytest.approx(reference, abs=1e-8)

    def test_tree_executor_compiled_matches_reference(self, case):
        tn, tree, reference = case
        compiled = TreeExecutor().amplitude(tn, tree)
        walker = TreeExecutor(compiled=False).amplitude(tn, tree)
        assert compiled == pytest.approx(walker, abs=1e-12)
        assert compiled == pytest.approx(reference, abs=1e-9)

    def test_fixed_indices_match_reference(self, case):
        tn, tree, _ = case
        fixed = {ix: 1 for ix in sorted(tn.inner_indices())[:2]}
        compiled = TreeExecutor().execute(tn, tree, fixed)
        walker = TreeExecutor(compiled=False).execute(tn, tree, fixed)
        np.testing.assert_allclose(
            compiled.require_data(),
            walker.transposed(compiled.indices).require_data(),
            atol=1e-12,
        )

    @SETTINGS
    @given(
        params=st.tuples(
            st.integers(min_value=3, max_value=6),
            st.integers(min_value=2, max_value=4),
            st.integers(min_value=0, max_value=1000),
        ),
        num_sliced=st.integers(min_value=0, max_value=3),
        batched=st.booleans(),
    )
    def test_random_networks_and_slicings(self, params, num_sliced, batched):
        qubits, depth, seed = params
        circ = random_brickwork_circuit(qubits, depth, seed=seed)
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, size=qubits).tolist()
        tn = amplitude_network(circ, bits)
        simplify_network(tn)
        if tn.num_tensors < 2:
            return
        tree = GreedyOptimizer(seed=seed).tree(tn)
        inner = sorted(tn.inner_indices())
        picks = rng.choice(len(inner), size=min(num_sliced, len(inner)), replace=False)
        sliced = [inner[i] for i in picks]
        reference = SlicedExecutor(tn, tree, sliced, mode="reference").amplitude()
        kwargs = dict(batch_index="auto") if batched else {}
        executor = SlicedExecutor(tn, tree, sliced, **kwargs)
        assert executor.amplitude() == pytest.approx(reference, abs=1e-9)
        assert reference == pytest.approx(amplitude(circ, bits), abs=1e-8)


class TestInvariantCaching:
    def test_invariant_steps_run_exactly_once(self, case):
        tn, tree, _ = case
        sliced = sorted(tn.inner_indices())[:3]
        executor = SlicedExecutor(tn, tree, sliced)
        executor.run()
        counts = executor.stats.node_counts
        for node in executor.plan.invariant_nodes:
            assert counts.get(node, 0) == 1, f"invariant node {node} ran {counts.get(node, 0)}x"
        for node in executor.plan.dependent_nodes:
            if node >= tree.num_leaves:
                assert counts.get(node, 0) == executor.num_subtasks

    def test_uncached_runs_everything_every_subtask(self, case):
        tn, tree, _ = case
        sliced = sorted(tn.inner_indices())[:2]
        executor = SlicedExecutor(tn, tree, sliced, cache_invariant=False)
        executor.run()
        for count in executor.stats.node_counts.values():
            assert count == executor.num_subtasks

    def test_dependent_set_matches_lifetimes(self, case):
        tn, tree, _ = case
        sliced = frozenset(sorted(tn.inner_indices())[:3])
        dependent = slice_dependent_nodes(tree, sliced)
        # a node is dependent iff one of its leaves carries a sliced edge
        for node in tree.nodes():
            touched = any(
                sliced & set(tn.tensor(tree.leaf_tids[leaf]).indices)
                for leaf in tree.leaves_under(node)
            )
            assert (node in dependent) == touched

    def test_batched_plan_uses_batched_matmul(self, case):
        tn, tree, _ = case
        sliced = sorted(tn.inner_indices())[:3]
        executor = SlicedExecutor(tn, tree, sliced, batch_index="auto")
        kinds = {step.kind for step in executor.batched_plan._steps}
        assert "bmm" in kinds or "einsum" in kinds
        # one sweep covers all w(b) values of the batch index
        batch_size = tn.size_of(executor.batch_index)
        assert executor.num_batched_sweeps * batch_size == executor.num_subtasks
        executor.run()
        assert executor.stats.executions == executor.num_batched_sweeps

    def test_stats_merge(self):
        a = PlanStats(node_counts={1: 2}, cache_hits=3, executions=1, slot_writes=2)
        b = PlanStats(node_counts={1: 1, 2: 5}, cache_hits=1, executions=4, slot_writes=1)
        a.merge(b)
        assert a.node_counts == {1: 3, 2: 5}
        assert a.cache_hits == 4 and a.executions == 5
        assert a.slot_writes == 3
        assert a.steps_executed == 8


class TestStemSlots:
    def test_slot_execution_bit_identical_to_allocating_path(self, case):
        from repro.execution import StemSlots

        tn, tree, _ = case
        sliced = frozenset(sorted(tn.inner_indices())[:2])
        plan = compile_plan(tn, tree, sliced)
        slots = StemSlots()
        assignment = {ix: 0 for ix in sliced}
        stats = PlanStats()
        with_slots = plan.execute(tn, assignment, stats=stats, slots=slots)
        without = plan.execute(tn, assignment)
        assert stats.slot_writes > 0
        np.testing.assert_array_equal(
            with_slots.require_data(), without.require_data()
        )

    def test_slots_alternate_along_the_stem(self, case):
        tn, tree, _ = case
        plan = compile_plan(tn, tree)
        chain = [s for s in plan._steps if s.slot is not None]
        assert chain, "every nontrivial tree has a stem"
        # the stem is a chain: each slotted step consumes the previous one
        # and the slots alternate, so two buffers always suffice
        for prev, step in zip(chain, chain[1:]):
            assert prev.node in (step.lhs, step.rhs)
            assert step.slot != prev.slot

    def test_slot_buffers_are_reused_across_executions(self, case):
        from repro.execution import StemSlots

        tn, tree, _ = case
        sliced = sorted(tn.inner_indices())[:2]
        plan = compile_plan(tn, tree, frozenset(sliced))
        slots = StemSlots()
        for value in range(2):
            plan.execute(tn, {ix: value for ix in sliced}, slots=slots)
        first = slots.allocated_bytes
        for value in range(2):
            plan.execute(tn, {ix: value for ix in sliced}, slots=slots)
        assert slots.allocated_bytes == first  # grown once, then stable

    def test_serial_backend_run_uses_slots(self, case):
        tn, tree, reference = case
        sliced = sorted(tn.inner_indices())[:3]
        executor = SlicedExecutor(tn, tree, sliced)
        assert executor.amplitude() == pytest.approx(reference, abs=1e-9)
        assert executor.stats.slot_writes > 0


class TestBranchFreeList:
    def test_bucket_is_next_power_of_two(self):
        from repro.execution import StemSlots

        assert StemSlots._bucket(1) == 1
        assert StemSlots._bucket(5) == 8
        assert StemSlots._bucket(8) == 8

    def test_take_release_recycles_the_same_buffer(self):
        from repro.execution import StemSlots

        slots = StemSlots()
        loaned = slots.take_branch((2, 3), np.dtype(np.complex64))
        owner = loaned
        while owner.base is not None:
            owner = owner.base
        # release through a *different* view of the loan — the free list
        # must still find the owning buffer
        slots.release_branch(loaned.reshape(6))
        assert slots.free_list_bytes == owner.nbytes
        again = slots.take_branch((3, 2), np.dtype(np.complex64))  # same bucket
        owner_again = again
        while owner_again.base is not None:
            owner_again = owner_again.base
        assert owner_again is owner
        assert slots.free_list_bytes == 0

    def test_foreign_arrays_pass_through_release(self):
        from repro.execution import StemSlots

        slots = StemSlots()
        foreign = np.zeros(4)
        slots.release_branch(foreign)  # no-op, never recycled
        assert slots.free_list_bytes == 0

    def test_branch_path_bit_identical_to_allocating_path(self, case):
        tn, tree, reference = case
        sliced = sorted(tn.inner_indices())[:3]
        baseline = SlicedExecutor(tn, tree, sliced, cache_invariant=False)
        expected = baseline.run().require_data().copy()
        flagged = SlicedExecutor(
            tn, tree, sliced, cache_invariant=False, branch_buffers=True
        )
        np.testing.assert_array_equal(flagged.run().require_data(), expected)
        assert baseline.stats.branch_writes == 0
        assert flagged.stats.branch_writes > 0
        # every subtask recycles the same branch buffers
        assert flagged.stats.branch_writes % flagged.stats.executions == 0

    def test_recycled_buffers_do_not_corrupt_results(self, case):
        tn, tree, _ = case
        from repro.execution import StemSlots

        plan = compile_plan(
            tn, tree, frozenset(sorted(tn.inner_indices())[:2]), branch_buffers=True
        )
        slots = StemSlots()
        assignment = {ix: 0 for ix in plan.sliced}
        first = plan.execute(tn, assignment, slots=slots).require_data().copy()
        # interleave a different assignment so every branch buffer is
        # recycled with other contents, then re-check determinism
        other = {ix: 1 if tn.size_of(ix) > 1 else 0 for ix in plan.sliced}
        plan.execute(tn, other, slots=slots)
        again = plan.execute(tn, assignment, slots=slots).require_data()
        np.testing.assert_array_equal(first, again)


class TestHyperIndexKernel:
    def test_kept_shared_hyper_index_uses_einsum_kernel(self):
        # three tensors share index "h" (a copy-tensor style hyper edge):
        # the first pair contraction must keep "h" on the output, which the
        # tensordot kernel cannot express
        from repro.tensornet import Tensor, TensorNetwork
        from repro.tensornet.contraction_tree import ContractionTree

        rng = np.random.default_rng(0)
        t0 = Tensor(("h", "a"), data=rng.normal(size=(2, 3)))
        t1 = Tensor(("h", "b"), data=rng.normal(size=(2, 4)))
        t2 = Tensor(("h",), data=rng.normal(size=(2,)))
        tn = TensorNetwork([t0, t1, t2])
        tree = ContractionTree.from_network(tn, [(0, 1), (3, 2)])
        plan = compile_plan(tn, tree)
        assert any(s.kind == "einsum" for s in plan._steps)
        result = plan.execute(tn)
        expected = np.einsum("ha,hb,h->ab", t0.data, t1.data, t2.data)
        np.testing.assert_allclose(
            result.transposed(("a", "b")).require_data(), expected, atol=1e-12
        )


class TestPlanValidation:
    def test_stale_memoized_plan_recompiles_after_mutation(self, case):
        tn, tree, reference = case
        mutated = tn.copy()
        executor = TreeExecutor()
        first = executor.amplitude(mutated, tree)
        assert first == pytest.approx(reference, abs=1e-9)
        # permute a leaf tensor's axes in place: same index set, new order
        tid = mutated.tensor_ids[0]
        tensor = mutated.tensor(tid)
        mutated.replace_tensor(tid, tensor.transposed(tuple(reversed(tensor.indices))))
        assert executor.amplitude(mutated, tree) == pytest.approx(reference, abs=1e-9)

    def test_batch_index_must_be_sliced(self, case):
        tn, tree, _ = case
        with pytest.raises(PlanError):
            compile_plan(tn, tree, frozenset(), batch_index="nope")
        with pytest.raises(ValueError):
            SlicedExecutor(tn, tree, sorted(tn.inner_indices())[:1], batch_index="nope")

    def test_assignment_keys_validated(self, case):
        tn, tree, _ = case
        sliced = sorted(tn.inner_indices())[:2]
        plan = compile_plan(tn, tree, frozenset(sliced))
        with pytest.raises(PlanError):
            plan.execute(tn, {sliced[0]: 0})

    def test_assignment_values_bounds_checked(self, case):
        # the reference walker raises for out-of-range slice values; the
        # compiled path must too (np.take would silently wrap -1)
        tn, tree, _ = case
        ix = sorted(tn.inner_indices())[0]
        for bad in (-1, tn.size_of(ix)):
            with pytest.raises(ValueError):
                TreeExecutor(compiled=False).execute(tn, tree, {ix: bad})
            with pytest.raises(PlanError):
                TreeExecutor().execute(tn, tree, {ix: bad})

    def test_reference_mode_rejects_batching(self, case):
        tn, tree, _ = case
        with pytest.raises(ValueError):
            SlicedExecutor(
                tn, tree, sorted(tn.inner_indices())[:1], mode="reference", batch_index="auto"
            )

    def test_reference_mode_rejects_thread_pool(self, case):
        tn, tree, _ = case
        with pytest.raises(ValueError):
            SlicedExecutor(
                tn, tree, sorted(tn.inner_indices())[:1], mode="reference", max_workers=2
            )

    def test_sliced_executor_drops_cache_on_data_only_mutation(self, case):
        tn, tree, _ = case
        mutated = tn.copy()
        sliced = sorted(mutated.inner_indices())[:2]
        executor = SlicedExecutor(mutated, tree, sliced)
        executor.run()  # warms the invariant cache
        # replace a slice-invariant leaf's data, keeping the index order
        invariant_leaves = [
            leaf for leaf in range(tree.num_leaves) if leaf not in executor.plan.dependent_nodes
        ]
        assert invariant_leaves, "workload must have a slice-invariant leaf"
        tid = tree.leaf_tids[invariant_leaves[0]]
        tensor = mutated.tensor(tid)
        mutated.replace_tensor(tid, tensor.with_data(tensor.require_data() * 2.0))
        oracle = SlicedExecutor(mutated, tree, sliced, mode="reference").amplitude()
        assert executor.amplitude() == pytest.approx(oracle, abs=1e-9)

    def test_sliced_executor_recompiles_after_mutation(self, case):
        tn, tree, reference = case
        mutated = tn.copy()
        sliced = sorted(mutated.inner_indices())[:2]
        executor = SlicedExecutor(mutated, tree, sliced)
        assert executor.amplitude() == pytest.approx(reference, abs=1e-9)
        tid = mutated.tensor_ids[0]
        tensor = mutated.tensor(tid)
        mutated.replace_tensor(tid, tensor.transposed(tuple(reversed(tensor.indices))))
        assert executor.amplitude() == pytest.approx(reference, abs=1e-9)

    def test_run_subtask_result_does_not_alias_cache(self, case):
        tn, tree, reference = case
        executor = SlicedExecutor(tn, tree, ())  # nothing sliced: root is cached
        first = executor.run_subtask(0)
        first.tensor.require_data()[...] = 1234.5  # caller scribbles on it
        assert executor.amplitude() == pytest.approx(reference, abs=1e-9)

    def test_stale_leaf_structure_rejected(self, case):
        tn, tree, _ = case
        mutated = tn.copy()
        tid = mutated.tensor_ids[0]
        tensor = mutated.tensor(tid)
        renamed = tensor.reindexed({tensor.indices[0]: "__stale__"})
        mutated.replace_tensor(tid, renamed)
        with pytest.raises(PlanError):
            compile_plan(mutated, tree)

    def test_unknown_mode_rejected(self, case):
        tn, tree, _ = case
        with pytest.raises(ValueError):
            SlicedExecutor(tn, tree, (), mode="fast")

    def test_sampler_rejects_pool_in_reference_mode(self):
        from repro.circuits import random_brickwork_circuit
        from repro.execution import CorrelatedSampler

        circ = random_brickwork_circuit(4, 2, seed=0)
        with pytest.raises(ValueError):
            CorrelatedSampler(circ, [0], executor_mode="reference", max_workers=4)
