"""Tests of the slice-or-stack decision model (§3.3 / Fig. 7)."""

from __future__ import annotations

import math

import pytest

from repro.core import SliceStackAnalyzer, StackingEstimate, StrategyDecision
from repro.hardware import SW26010PRO, sunway_hierarchy


@pytest.fixture(scope="module")
def analyzer(grid_tree):
    return SliceStackAnalyzer(grid_tree)


class TestSlicingSide:
    def test_no_overhead_when_everything_fits(self, analyzer, grid_tree):
        assert analyzer.slicing_overhead(grid_tree.max_rank()) == pytest.approx(1.0)

    def test_overhead_grows_as_target_shrinks(self, analyzer, grid_tree):
        big = analyzer.slicing_overhead(grid_tree.max_rank() - 2)
        small = analyzer.slicing_overhead(max(grid_tree.max_rank() - 6, 3))
        assert small >= big >= 1.0

    def test_greedy_slicer_variant(self, grid_tree):
        greedy = SliceStackAnalyzer(grid_tree, slicer="greedy")
        target = max(grid_tree.max_rank() - 4, 3)
        assert greedy.slicing_overhead(target) >= 1.0

    def test_invalid_slicer(self, grid_tree):
        with pytest.raises(ValueError):
            SliceStackAnalyzer(grid_tree, slicer="magic")


class TestStackingSide:
    def test_bytes_decrease_with_larger_target(self, analyzer, grid_tree):
        small_target = analyzer.stacking_bytes(max(grid_tree.max_rank() - 6, 3))
        large_target = analyzer.stacking_bytes(grid_tree.max_rank())
        assert small_target >= large_target

    def test_zero_bytes_when_everything_fits(self, analyzer, grid_tree):
        # nothing exceeds a target at the tree's own max rank
        assert analyzer.stacking_bytes(grid_tree.max_rank() + 1) == 0.0

    def test_estimate_fields(self, analyzer, grid_tree):
        hierarchy = sunway_hierarchy()
        boundary = (hierarchy.level("disk"), hierarchy.level("main_memory"))
        estimate = analyzer.stacking_estimate(boundary, max(grid_tree.max_rank() - 4, 3))
        assert isinstance(estimate, StackingEstimate)
        assert estimate.boundary == ("disk", "main_memory")
        assert estimate.equivalent_overhead >= 1.0
        assert estimate.movement_seconds == pytest.approx(
            estimate.bytes_moved / SW26010PRO.io_bandwidth
        )

    def test_faster_boundary_has_lower_equivalent_overhead(self, analyzer, grid_tree):
        hierarchy = sunway_hierarchy()
        target = max(grid_tree.max_rank() - 4, 3)
        io_est = analyzer.stacking_estimate(
            (hierarchy.level("disk"), hierarchy.level("main_memory")), target
        )
        dma_est = analyzer.stacking_estimate(
            (hierarchy.level("main_memory"), hierarchy.level("ldm")), target
        )
        assert dma_est.equivalent_overhead <= io_est.equivalent_overhead


class TestDecision:
    def test_decide_returns_cheaper_strategy(self, analyzer, grid_tree):
        target = max(grid_tree.max_rank() - 4, 3)
        decision = analyzer.decide("disk", target)
        assert isinstance(decision, StrategyDecision)
        if decision.slicing_overhead <= decision.stacking_overhead:
            assert decision.strategy == "slice"
        else:
            assert decision.strategy == "stack"
        assert decision.advantage >= 1.0

    def test_innermost_level_has_no_inner_boundary(self, analyzer):
        with pytest.raises(ValueError):
            analyzer.decide("ldm", 10)

    def test_paper_rule_of_thumb(self, analyzer, grid_tree):
        """Low-bandwidth IO boundary favours slicing more strongly than the
        high-bandwidth DMA boundary for the same target."""
        target = max(grid_tree.max_rank() - 4, 3)
        disk = analyzer.decide("disk", target)
        mem = analyzer.decide("main_memory", target)
        assert disk.stacking_overhead >= mem.stacking_overhead


class TestDistribution:
    def test_overhead_distribution_rows(self, analyzer, grid_tree):
        targets = [grid_tree.max_rank() - d for d in (2, 4, 6)]
        targets = [max(t, 3) for t in targets]
        rows = analyzer.overhead_distribution(targets)
        assert len(rows) == len(targets)
        for row, target in zip(rows, targets):
            assert row["target_rank"] == float(target)
            assert row["slicing_overhead"] >= 1.0
            assert "stacking_overhead_disk_to_main_memory" in row
            assert "stacking_overhead_main_memory_to_ldm" in row
            assert row["prefer_slice_disk_to_main_memory"] in (0.0, 1.0)
