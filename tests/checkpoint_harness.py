"""Subprocess harness for the coordinator-crash checkpoint tests.

Not a pytest module (the name carries no ``test_`` prefix on purpose):
``tests/test_checkpoint.py`` launches this script in a *fresh process* so
an injected coordinator death takes down a real coordinator — pool and
sockets included — and the resume phase starts from nothing but the
on-disk ledger, exactly like a restart after an OOM kill.

Usage::

    python tests/checkpoint_harness.py STORE_ROOT BACKEND KILL_ORDINAL

``BACKEND`` is one of ``serial`` / ``threads`` / ``pool`` /
``distributed``.  ``KILL_ORDINAL`` is the 0-based harvest ordinal a
``"kill-coordinator"`` fault fires on, or ``none`` to run (resume) to
completion.  On a clean finish the amplitude is printed as::

    RESULT (<real>+<imag>j)

which the parent test parses and compares bitwise against its own serial
reference.  An injected death propagates as
:exc:`~repro.execution.faultinject.InjectedCoordinatorDeath`, so the
process exits nonzero mid-run — with the write-ahead ledger already
durable and shared-memory segments still unlinked by their finalizers.

The workload and policy are fixed constants: both phases (kill + resume)
must compute the identical job fingerprint or the resume would discard
the ledger.
"""

from __future__ import annotations

import sys

import numpy as np

from repro.circuits import random_brickwork_circuit
from repro.execution import (
    CheckpointStore,
    DistributedBackend,
    FaultInjector,
    FaultPolicy,
    FaultSpec,
    SerialBackend,
    SharedMemoryProcessPoolBackend,
    SlicedExecutor,
    ThreadPoolBackend,
)
from repro.paths import GreedyOptimizer
from repro.tensornet import amplitude_network, simplify_network

NUM_QUBITS = 6
DEPTH = 4
SEED = 13
NUM_SLICED = 4
WORKERS = 2
CHUNK_SIZE = 2


def build_case():
    circ = random_brickwork_circuit(NUM_QUBITS, DEPTH, seed=SEED)
    bits = [
        int(b) for b in np.random.default_rng(SEED).integers(0, 2, NUM_QUBITS)
    ]
    tn = amplitude_network(circ, bits)
    simplify_network(tn)
    tree = GreedyOptimizer(seed=1).tree(tn)
    sliced = sorted(tn.inner_indices())[:NUM_SLICED]
    return tn, tree, sliced


def build_backend(name: str):
    if name == "serial":
        return SerialBackend()
    if name == "threads":
        return ThreadPoolBackend(WORKERS)
    if name == "pool":
        return SharedMemoryProcessPoolBackend(WORKERS, chunk_size=CHUNK_SIZE)
    if name == "distributed":
        return DistributedBackend(num_workers=WORKERS, chunk_size=CHUNK_SIZE)
    raise SystemExit(f"unknown backend {name!r}")


def main(argv) -> None:
    store_root, backend_name, kill_ordinal = argv
    store = CheckpointStore(store_root)
    tn, tree, sliced = build_case()
    injector = None
    if kill_ordinal != "none":
        injector = FaultInjector(
            [FaultSpec("kill-coordinator", chunk=int(kill_ordinal))]
        )
    executor = SlicedExecutor(
        tn,
        tree,
        sliced,
        backend=build_backend(backend_name),
        fault_policy=FaultPolicy.retrying(),
        fault_injector=injector,
    )
    amplitude = executor.amplitude(resume=store)
    print(f"RESULT {amplitude!r}", flush=True)
    print(
        f"STATS resumed={executor.stats.resumed_slots} "
        f"checkpointed={executor.stats.checkpointed_slots}",
        flush=True,
    )


if __name__ == "__main__":
    main(sys.argv[1:])
