"""Unified cost model: analytic + calibrated predictions, batching, scaling.

Covers the two contract modes of the acceptance criteria:

* with **no** calibration data (no cost model anywhere), every planner /
  optimizer / executor / scaling output is bit-identical to the
  uncalibrated behaviour;
* with a model (analytic, or calibrated from measured timings), the §6.2
  projections use per-backend subtask seconds and ``batch_indices="auto"``
  selects a lifetime-aware multi-index group under the memory target.
"""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.analysis import cost_model_summary, predicted_vs_measured
from repro.core import LifetimeSliceFinder
from repro.costs import (
    AnalyticCostModel,
    CalibratedCostModel,
    CalibrationRecord,
    CostModel,
    CostModelError,
    batched_peak_rank,
    calibration_payload,
    select_batch_group,
)
from repro.execution import (
    HeadlineProjection,
    PlanStats,
    ProcessScheduler,
    SerialBackend,
    SlicedExecutor,
    strong_scaling,
    weak_scaling,
)
from repro.circuits import grid_circuit
from repro.paths import HyperOptimizer
from repro.pipeline import SimulationPlanner
from repro.tensornet import amplitude_network, simplify_network


@pytest.fixture(scope="module")
def workload():
    """Concrete network + tree + a slicing set of >= 2 inner indices."""
    circuit = grid_circuit(3, 3, cycles=6, seed=5)
    network = amplitude_network(circuit, [0] * circuit.num_qubits, concrete=True)
    simplify_network(network)
    tree = HyperOptimizer(max_trials=6, seed=2).search(network)
    target = max(tree.max_rank() - 3, 3)
    slicing = LifetimeSliceFinder(target).find(tree)
    inner = network.inner_indices()
    sliced = frozenset(ix for ix in slicing.sliced if ix in inner)
    assert len(sliced) >= 2, "workload must slice at least two indices"
    return network, tree, sliced


# ----------------------------------------------------------------------
# Analytic model
# ----------------------------------------------------------------------
class TestAnalyticCostModel:
    def test_positive_and_slicing_monotone(self, grid_tree):
        model = AnalyticCostModel()
        base = model.subtask_seconds(grid_tree)
        assert base > 0
        edge = max(grid_tree.all_indices())
        assert model.subtask_seconds(grid_tree, {edge}) <= base
        # total over subtasks is never below the per-subtask time
        assert model.total_seconds(grid_tree, {edge}) >= model.subtask_seconds(
            grid_tree, {edge}
        )

    def test_tree_cost_is_subtask_seconds(self, grid_tree):
        model = AnalyticCostModel()
        assert model.tree_cost(grid_tree) == model.subtask_seconds(grid_tree)

    def test_roofline_regimes(self):
        model = AnalyticCostModel()
        # a huge-flops step is compute bound, a tiny one bandwidth bound
        compute_bound = model.step_seconds(60.0, 10.0)
        assert compute_bound == pytest.approx(8.0 * 2.0**60 / model.peak_flops)
        bandwidth_bound = model.step_seconds(1.0, 30.0)
        assert bandwidth_bound == pytest.approx(
            model.element_bytes * 2.0**30 / model.memory_bandwidth
        )

    def test_subtask_flops_matches_tree_cost_convention(self, grid_tree):
        assert CostModel.subtask_flops(grid_tree) == pytest.approx(
            8.0 * grid_tree.contraction_cost()
        )

    def test_select_batch_group_needs_target(self, grid_tree):
        with pytest.raises(CostModelError):
            AnalyticCostModel().select_batch_group(grid_tree, {"x"})


# ----------------------------------------------------------------------
# Lifetime-aware batch-group selection
# ----------------------------------------------------------------------
class TestBatchGroupSelection:
    def test_generous_target_admits_every_index(self, workload):
        _, small_tree, small_sliced = workload
        target = small_tree.max_rank() + len(small_sliced)
        group = select_batch_group(small_tree, small_sliced, target)
        assert set(group) == set(small_sliced)

    def test_hopeless_target_admits_nothing(self, workload):
        _, small_tree, small_sliced = workload
        assert select_batch_group(small_tree, small_sliced, 0) == ()

    def test_group_respects_peak_rank(self, grid_tree, grid_target_rank):
        slicing = LifetimeSliceFinder(grid_target_rank).find(grid_tree)
        sliced = slicing.sliced
        target = grid_target_rank + 2
        group = select_batch_group(grid_tree, sliced, target)
        if group:
            assert batched_peak_rank(grid_tree, sliced, frozenset(group)) <= target
        # admitting the whole set may violate the target; the greedy
        # selector must never admit more than fits
        assert len(group) <= len(sliced)

    def test_deterministic_and_size_ordered(self, workload):
        _, small_tree, small_sliced = workload
        target = small_tree.max_rank() + len(small_sliced)
        first = select_batch_group(small_tree, small_sliced, target)
        second = select_batch_group(small_tree, small_sliced, target)
        assert first == second
        sizes = [small_tree.index_size(ix) for ix in first]
        assert sizes == sorted(sizes, reverse=True)


class TestAutoBatchOnExecutor:
    def test_legacy_auto_is_single_largest(self, workload):
        small_network, small_tree, small_sliced = workload
        executor = SlicedExecutor(
            small_network, small_tree, small_sliced, batch_indices="auto"
        )
        sizes = {ix: small_network.size_of(ix) for ix in small_sliced}
        expected = max(small_sliced, key=lambda ix: (sizes[ix], ix))
        assert executor.batch_indices == (expected,)

    def test_target_aware_auto_selects_group(
        self, workload):
        small_network, small_tree, small_sliced = workload
        target = small_tree.max_rank() + len(small_sliced)
        executor = SlicedExecutor(
            small_network,
            small_tree,
            small_sliced,
            batch_indices="auto",
            memory_target_rank=target,
        )
        assert set(executor.batch_indices) == set(small_sliced)
        assert len(executor.batch_indices) > 1
        # bit-identical to the plain serial enumeration
        plain = SlicedExecutor(small_network, small_tree, small_sliced)
        assert executor.amplitude() == pytest.approx(plain.amplitude(), abs=1e-10)

    def test_cost_model_supplies_the_target(
        self, workload):
        small_network, small_tree, small_sliced = workload
        target = small_tree.max_rank() + len(small_sliced)
        model = AnalyticCostModel(memory_target_rank=target)
        executor = SlicedExecutor(
            small_network,
            small_tree,
            small_sliced,
            batch_indices="auto",
            cost_model=model,
        )
        assert set(executor.batch_indices) == set(small_sliced)

    def test_impossible_target_falls_back_to_enumeration(
        self, workload):
        small_network, small_tree, small_sliced = workload
        executor = SlicedExecutor(
            small_network,
            small_tree,
            small_sliced,
            batch_indices="auto",
            memory_target_rank=1,
        )
        assert executor.batch_indices == ()
        plain = SlicedExecutor(small_network, small_tree, small_sliced)
        assert executor.amplitude() == pytest.approx(plain.amplitude(), abs=1e-10)


class TestBranchFreeListOnCachedPath:
    def test_cached_run_recycles_branch_buffers_bit_identically(self, workload):
        network, tree, sliced = workload
        baseline = SlicedExecutor(network, tree, sliced)
        expected = baseline.run().require_data().copy()
        flagged = SlicedExecutor(network, tree, sliced, branch_buffers=True)
        np.testing.assert_array_equal(flagged.run().require_data(), expected)
        # this workload has slice-dependent off-stem steps, so the cached
        # path must draw from the free list
        assert flagged.stats.branch_writes > 0
        backend = flagged.backend
        assert isinstance(backend, SerialBackend)
        assert backend._slots.free_list_bytes > 0

    def test_branch_flag_composes_with_batching(self, workload):
        network, tree, sliced = workload
        plain = SlicedExecutor(network, tree, sliced).amplitude()
        batched = SlicedExecutor(
            network, tree, sliced, batch_indices="auto", branch_buffers=True
        )
        assert batched.amplitude() == pytest.approx(plain, abs=1e-10)

    def test_branch_flag_on_uncached_process_pool(self, workload):
        # regression: workers hold shared-memory-backed leaves whose array
        # base is an mmap, which release_branch must treat as foreign
        from repro.execution import SharedMemoryProcessPoolBackend

        network, tree, sliced = workload
        plain = SlicedExecutor(network, tree, sliced).run().require_data().copy()
        pooled = SlicedExecutor(
            network,
            tree,
            sliced,
            branch_buffers=True,
            cache_invariant=False,
            backend=SharedMemoryProcessPoolBackend(max_workers=2),
        )
        np.testing.assert_array_equal(pooled.run().require_data(), plain)


# ----------------------------------------------------------------------
# Measured timings → calibrated model
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def measured_run(workload):
    """A real serial run plus its executor (source of measured timings)."""
    network, tree, sliced = workload
    executor = SlicedExecutor(network, tree, sliced)
    value = executor.amplitude()
    return executor, value


class TestMeasuredTimings:
    def test_plan_stats_record_subtask_and_stage_times(self, measured_run):
        executor, _ = measured_run
        stats = executor.stats
        assert stats.timed_subtasks == stats.executions
        assert len(stats.subtask_seconds) == min(stats.timed_subtasks, 256)
        assert all(seconds >= 0 for seconds in stats.subtask_seconds)
        assert stats.stage_seconds["execute"] == pytest.approx(
            stats.subtask_seconds_sum
        )
        assert "warm_cache" in stats.stage_seconds
        assert stats.mean_subtask_seconds >= 0

    def test_stats_merge_folds_timings(self):
        first, second = PlanStats(), PlanStats()
        for seconds in (1.0, 2.0):
            first.record_subtask_time(seconds)
        first.record_stage("execute", 3.0)
        second.record_subtask_time(4.0)
        second.record_stage("execute", 4.0)
        second.record_stage("warm_cache", 0.5)
        first.merge(second)
        assert first.subtask_seconds == [1.0, 2.0, 4.0]
        assert first.subtask_seconds_sum == 7.0
        assert first.timed_subtasks == 3
        assert first.mean_subtask_seconds == pytest.approx(7.0 / 3)
        assert first.stage_seconds == {"execute": 7.0, "warm_cache": 0.5}

    def test_timing_samples_are_bounded_but_aggregates_exact(self):
        from repro.execution.plan import MAX_TIMING_SAMPLES

        stats = PlanStats()
        total = MAX_TIMING_SAMPLES + 50
        for i in range(total):
            stats.record_subtask_time(1.0)
        assert len(stats.subtask_seconds) == MAX_TIMING_SAMPLES
        assert stats.timed_subtasks == total
        assert stats.mean_subtask_seconds == pytest.approx(1.0)
        other = PlanStats()
        other.record_subtask_time(1.0)
        stats.merge(other)  # capped list does not grow, aggregates do
        assert len(stats.subtask_seconds) == MAX_TIMING_SAMPLES
        assert stats.timed_subtasks == total + 1

    def test_calibration_record_from_stats(self, measured_run, workload):
        _, small_tree, small_sliced = workload
        executor, _ = measured_run
        record = executor.calibration_record()
        assert record.backend == "serial"
        # the samples time the cache-warm path, so the record pairs them
        # with the slice-dependent (not full Eq. 1) work
        assert record.num_steps == CostModel.dependent_step_count(
            small_tree, small_sliced
        )
        assert record.subtask_flops == pytest.approx(
            CostModel.dependent_subtask_flops(small_tree, small_sliced)
        )
        assert record.num_steps < len(small_tree.internal_nodes()) or (
            record.subtask_flops
            == pytest.approx(8.0 * small_tree.contraction_cost(small_sliced))
        )
        assert record.mean_seconds > 0

    def test_dependent_flops_exclude_the_invariant_fraction(self, workload):
        _, tree, sliced = workload
        dependent = CostModel.dependent_subtask_flops(tree, sliced)
        full = CostModel.subtask_flops(tree, sliced)
        assert 0 < dependent <= full
        # empty slicing: the one subtask runs everything
        assert CostModel.dependent_subtask_flops(tree) == pytest.approx(
            CostModel.subtask_flops(tree)
        )
        assert CostModel.dependent_step_count(tree) == len(tree.internal_nodes())

    def test_uncached_runs_pair_with_full_flops(self, workload):
        network, tree, sliced = workload
        executor = SlicedExecutor(network, tree, sliced, cache_invariant=False)
        executor.run()
        assert executor.stats.cache_hits == 0
        record = executor.calibration_record()
        # no cache: every subtask recontracted the full tree
        assert record.subtask_flops == pytest.approx(
            CostModel.subtask_flops(tree, sliced)
        )
        assert record.num_steps == len(tree.internal_nodes())
        # and the payload (single dependent-flops label) skips such stats
        payload = calibration_payload({"serial": executor.stats}, tree, sliced)
        assert payload["backends"] == {}

    def test_calibration_record_rejects_batched_runs(
        self, workload):
        small_network, small_tree, small_sliced = workload
        executor = SlicedExecutor(
            small_network, small_tree, small_sliced, batch_indices="auto"
        )
        executor.amplitude()
        with pytest.raises(ValueError, match="non-batched"):
            executor.calibration_record()
        # batched samples are whole-sweep times: every per-subtask consumer
        # refuses them
        assert executor.stats.batched_executions > 0
        with pytest.raises(CostModelError, match="batched"):
            CalibrationRecord.from_stats(
                executor.stats, small_tree, small_sliced, "serial"
            )
        with pytest.raises(ValueError, match="batched"):
            predicted_vs_measured(
                AnalyticCostModel(), executor.stats, small_tree, small_sliced
            )
        payload = calibration_payload(
            {"serial": executor.stats}, small_tree, small_sliced
        )
        assert payload["backends"] == {}


class TestCalibratedCostModel:
    def test_single_workload_fit_reproduces_the_mean(self, measured_run, workload):
        _, small_tree, small_sliced = workload
        executor, _ = measured_run
        record = executor.calibration_record()
        model = CalibratedCostModel.fit([record])
        predicted = model.subtask_seconds(small_tree, small_sliced, backend="serial")
        assert predicted == pytest.approx(record.mean_seconds, rel=1e-9)

    def test_two_workload_fit_is_exact_on_consistent_data(self):
        # seconds = 2e-9 * flops + 1e-4 * steps, two distinct workloads
        records = [
            CalibrationRecord("serial", 1e6, 10, (2e-9 * 1e6 + 1e-4 * 10,)),
            CalibrationRecord("serial", 4e6, 25, (2e-9 * 4e6 + 1e-4 * 25,)),
        ]
        model = CalibratedCostModel.fit(records)
        fitted = model.coefficients["serial"]
        assert fitted.seconds_per_flop == pytest.approx(2e-9, rel=1e-6)
        assert fitted.seconds_per_step == pytest.approx(1e-4, rel=1e-6)

    def test_unknown_backend_raises_without_fallback(self, measured_run, workload):
        _, small_tree, _ = workload
        executor, _ = measured_run
        model = CalibratedCostModel.fit([executor.calibration_record()])
        with pytest.raises(CostModelError, match="no calibration"):
            model.subtask_seconds(small_tree, backend="threads")

    def test_unknown_backend_uses_fallback(self, measured_run, workload):
        _, small_tree, _ = workload
        executor, _ = measured_run
        analytic = AnalyticCostModel()
        model = CalibratedCostModel.fit(
            [executor.calibration_record()], fallback=analytic
        )
        assert model.subtask_seconds(small_tree, backend="threads") == pytest.approx(
            analytic.subtask_seconds(small_tree)
        )

    def test_bench_json_round_trip(self, measured_run, workload, tmp_path):
        _, small_tree, small_sliced = workload
        executor, _ = measured_run
        payload = {
            "calibration": calibration_payload(
                {"serial": executor.stats}, small_tree, small_sliced
            )
        }
        path = tmp_path / "BENCH_exec_plan.json"
        path.write_text(json.dumps(payload))
        model = CalibratedCostModel.from_bench_json(path)
        assert model.backends == ("serial",)
        direct = CalibratedCostModel.fit([executor.calibration_record()])
        # the JSON persists at most MAX_SAMPLES_PERSISTED samples; on this
        # small workload that is all of them, so the fits agree exactly
        assert model.subtask_seconds(small_tree, small_sliced) == pytest.approx(
            direct.subtask_seconds(small_tree, small_sliced)
        )

    def test_empty_sources_raise(self, tmp_path):
        with pytest.raises(CostModelError):
            CalibratedCostModel.fit([])
        path = tmp_path / "empty.json"
        path.write_text(json.dumps({"calibration": {"backends": {}}}))
        with pytest.raises(CostModelError):
            CalibratedCostModel.from_bench_json(path)


class TestPerEngineCalibration:
    """Engine-qualified coefficient keys: ``"<backend>+<engine>"``."""

    def test_python_engine_keeps_plain_key(self):
        record = CalibrationRecord("serial", 1e6, 10, (0.5,))
        assert record.tape_engine == "python"
        assert record.key == "serial"

    def test_native_engine_qualifies_key(self):
        record = CalibrationRecord(
            "serial", 1e6, 10, (0.5,), tape_engine="native"
        )
        assert record.key == "serial+native"

    def test_fit_separates_engines(self):
        # same workload, native twice as fast: the fit must not average
        records = [
            CalibrationRecord("serial", 1e6, 10, (0.4,)),
            CalibrationRecord("serial", 1e6, 10, (0.2,), tape_engine="native"),
        ]
        model = CalibratedCostModel.fit(records)
        assert set(model.backends) == {"serial", "serial+native"}
        python_fit = model.coefficients["serial"]
        native_fit = model.coefficients["serial+native"]
        assert native_fit.predict(1e6, 10) == pytest.approx(0.2)
        assert python_fit.predict(1e6, 10) == pytest.approx(0.4)

    def test_engine_key_falls_back_to_plain_backend(
        self, measured_run, workload
    ):
        _, small_tree, small_sliced = workload
        executor, _ = measured_run
        model = CalibratedCostModel.fit([executor.calibration_record()])
        plain = model.subtask_seconds(small_tree, small_sliced, backend="serial")
        engine = model.subtask_seconds(
            small_tree, small_sliced, backend="serial+native"
        )
        assert engine == plain

    def test_from_bench_json_parses_engine_keys(self, workload, tmp_path):
        _, small_tree, small_sliced = workload
        payload = {
            "calibration": {
                "subtask_flops": 1e6,
                "num_steps": 10,
                "backends": {
                    "serial": {"subtask_seconds": [0.4]},
                    "serial+native": {
                        "subtask_seconds": [0.2],
                        "tape_engine": "native",
                    },
                },
            }
        }
        path = tmp_path / "BENCH_exec_plan.json"
        path.write_text(json.dumps(payload))
        model = CalibratedCostModel.from_bench_json(path)
        assert set(model.backends) == {"serial", "serial+native"}
        assert model.coefficients["serial+native"].predict(1e6, 10) == (
            pytest.approx(0.2)
        )

    def test_payload_records_engine(self, measured_run, workload):
        _, small_tree, small_sliced = workload
        executor, _ = measured_run
        payload = calibration_payload(
            {"serial": executor.stats}, small_tree, small_sliced
        )
        assert payload["backends"]["serial"]["tape_engine"] == "python"


# ----------------------------------------------------------------------
# Scaling projections from the model
# ----------------------------------------------------------------------
class TestScalingFromCostModel:
    def test_scheduler_uses_measured_subtask_seconds(self, measured_run, workload):
        _, small_tree, small_sliced = workload
        executor, _ = measured_run
        model = CalibratedCostModel.fit([executor.calibration_record()])
        scheduler = ProcessScheduler.from_cost_model(
            model, small_tree, small_sliced, backend="serial"
        )
        assert scheduler.subtask_seconds == pytest.approx(
            model.subtask_seconds(small_tree, small_sliced, backend="serial")
        )
        # the calibrated seconds cover only cache-warm dependent work, so
        # the flops bookkeeping pairs with the same work
        assert scheduler.subtask_flops == pytest.approx(
            CostModel.dependent_subtask_flops(small_tree, small_sliced)
        )
        analytic = ProcessScheduler.from_cost_model(
            AnalyticCostModel(), small_tree, small_sliced
        )
        assert analytic.subtask_flops == pytest.approx(
            8.0 * small_tree.contraction_cost(small_sliced)
        )

    def test_sweeps_accept_cost_model(self, grid_tree):
        model = AnalyticCostModel()
        strong = strong_scaling(
            cost_model=model, tree=grid_tree, num_subtasks=1024, node_counts=[8, 16, 32]
        )
        assert [p.num_nodes for p in strong] == [8, 16, 32]
        assert strong[0].speedup == pytest.approx(1.0)
        weak = weak_scaling(
            cost_model=model, tree=grid_tree, subtasks_per_node=4, node_counts=[8, 16]
        )
        assert weak[0].efficiency == pytest.approx(1.0)

    def test_sweeps_reject_both_scheduler_and_model(self, grid_tree):
        scheduler = ProcessScheduler(subtask_seconds=1.0, subtask_flops=1.0)
        with pytest.raises(ValueError, match="not both"):
            strong_scaling(scheduler, cost_model=AnalyticCostModel(), tree=grid_tree)
        with pytest.raises(ValueError, match="pass cost_model"):
            weak_scaling()

    def test_headline_projection_from_model(self, measured_run, workload):
        _, small_tree, small_sliced = workload
        executor, _ = measured_run
        model = CalibratedCostModel.fit([executor.calibration_record()])
        projection = HeadlineProjection.from_cost_model(
            model, small_tree, small_sliced, measured_nodes=64, projected_nodes=1024
        )
        summary = projection.summary()
        assert summary["projected_seconds"] == pytest.approx(
            summary["measured_seconds"] * 64 / 1024
        )
        assert summary["sustained_pflops"] > 0
        num_subtasks = round(
            math.prod(small_tree.index_size(ix) for ix in small_sliced)
        )
        assert num_subtasks == round(small_tree.num_subtasks(small_sliced))
        assert projection.total_flops == pytest.approx(
            CostModel.dependent_subtask_flops(small_tree, small_sliced) * num_subtasks
        )


# ----------------------------------------------------------------------
# Optimizer + pipeline integration
# ----------------------------------------------------------------------
class TestCostModelIntegration:
    def test_optimizer_records_predicted_cost(self, grid_network):
        model = AnalyticCostModel()
        opt = HyperOptimizer(max_trials=4, seed=0, cost_model=model)
        opt.search(grid_network)
        assert opt.trials
        for record in opt.trials:
            assert record.cost is not None and record.cost > 0
        best = opt.best_record()
        assert best.cost == min(r.cost for r in opt.trials)
        summary = opt.trial_summary()
        assert any("best_predicted_seconds" in row for row in summary.values())

    def test_optimizer_without_model_is_bit_identical(self, grid_network):
        plain = HyperOptimizer(max_trials=4, seed=0)
        plain.search(grid_network)
        assert all(record.cost is None for record in plain.trials)
        modelled = HyperOptimizer(max_trials=4, seed=0, cost_model=AnalyticCostModel())
        modelled.search(grid_network)
        # same seed → same trial trees either way (scoring never perturbs
        # the RNG stream)
        assert [(r.method, r.log10_flops, r.max_rank, r.seed) for r in plain.trials] == [
            (r.method, r.log10_flops, r.max_rank, r.seed) for r in modelled.trials
        ]

    def test_planner_threads_the_model(self, small_circuit):
        model = AnalyticCostModel()
        planner = SimulationPlanner(
            target_rank=12, ldm_rank=8, max_trials=4, seed=0, cost_model=model
        )
        plan = planner.plan_circuit(small_circuit, concrete=True)
        assert plan.cost_model is model
        summary = plan.summary()
        assert summary["predicted_subtask_seconds"] == pytest.approx(
            model.subtask_seconds(plan.tree, plan.slicing.sliced)
        )
        scheduler = plan.scheduler()
        assert scheduler.subtask_seconds == pytest.approx(
            summary["predicted_subtask_seconds"]
        )
        # executing the plan attaches measured stats → stage report
        planner.execute_plan(plan)
        assert plan.measured_stats is not None
        rows = plan.stage_costs()
        by_stage = {row["stage"]: row for row in rows}
        assert "predicted_subtask_seconds" in by_stage["execute"]
        assert "measured_seconds" in by_stage["execute"]
        vs = predicted_vs_measured(
            model, plan.measured_stats, plan.tree, plan.slicing.sliced
        )
        assert vs["ratio"] > 0

    def test_planner_without_model_keeps_summary_keys(self, small_circuit):
        planner = SimulationPlanner(target_rank=12, ldm_rank=8, max_trials=4, seed=0)
        plan = planner.plan_circuit(small_circuit, concrete=True)
        summary = plan.summary()
        assert "predicted_subtask_seconds" not in summary
        assert "measured_subtask_seconds" not in summary
        with pytest.raises(ValueError, match="without a cost model"):
            plan.predicted_subtask_seconds()

    def test_cost_model_summary_rows(self, measured_run, workload):
        _, small_tree, small_sliced = workload
        executor, _ = measured_run
        model = CalibratedCostModel.fit(
            [executor.calibration_record()], fallback=AnalyticCostModel()
        )
        rows = cost_model_summary(
            model, small_tree, small_sliced, backends=["serial", "threads"]
        )
        assert [row["backend"] for row in rows] == ["serial", "threads"]
        assert all(row["subtask_seconds"] > 0 for row in rows)
