"""Tests of the real fused sub-path executor (§5 in the compiled plan).

The fused mode must be *bit-identical* to the step-by-step path — same
values, same accumulation order — on every backend, for every chunking,
with and without the invariant cache, with batched sweeps, and through a
persistent process-pool session.  The fusion pass itself is
property-tested: every fused group's working set respects the cap the
pass was given (the LDM-budget analogue), and every precompiled
permutation kernel reproduces ``np.transpose`` exactly.
"""

from __future__ import annotations

import itertools
import pickle

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.circuits import random_brickwork_circuit
from repro.core.permutation_map import PermutationSpec
from repro.core.stem import extract_stem
from repro.costs import (
    AnalyticCostModel,
    predicted_fused_seconds,
    rank_fusion_caps,
    select_fusion_cap,
)
from repro.execution import (
    FusedRun,
    SerialBackend,
    SharedMemoryProcessPoolBackend,
    SlicedExecutor,
    StemSlots,
    ThreadPoolBackend,
    compile_plan,
)
from repro.execution.fusion import _perm_kernel
from repro.paths import GreedyOptimizer
from repro.tensornet import amplitude_network, simplify_network

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _case(num_qubits=6, depth=4, seed=13):
    circ = random_brickwork_circuit(num_qubits, depth, seed=seed)
    tn = amplitude_network(circ, [0] * num_qubits)
    simplify_network(tn)
    tree = GreedyOptimizer(seed=1).tree(tn)
    return tn, tree


@pytest.fixture(scope="module")
def case():
    return _case()


@pytest.fixture(scope="module")
def sliced(case):
    tn, _ = case
    return sorted(tn.inner_indices())[:4]


@pytest.fixture(scope="module")
def stepwise_value(case, sliced):
    tn, tree = case
    return SlicedExecutor(tn, tree, sliced).amplitude()


class TestFusedBitIdentity:
    """Fused execution vs the step-by-step path: exact equality."""

    def test_fused_serial(self, case, sliced, stepwise_value):
        tn, tree = case
        executor = SlicedExecutor(tn, tree, sliced, fused=True)
        assert executor.fused
        assert executor.amplitude() == stepwise_value
        assert executor.stats.fused_steps > 0

    def test_fused_plan_level_per_assignment(self, case, sliced):
        """Every assignment's full result tensor matches bit for bit."""
        tn, tree = case
        plain = compile_plan(tn, tree, frozenset(sliced))
        fused = compile_plan(tn, tree, frozenset(sliced), fused=True)
        assert fused.fused and fused.fused_runs
        slots_a, slots_b = StemSlots(), StemSlots()
        cache_a, cache_b = plain.new_cache(), fused.new_cache()
        sizes = {ix: tree.index_size(ix) for ix in sliced}
        for values in itertools.product(*[range(sizes[ix]) for ix in sliced]):
            assignment = dict(zip(sliced, values))
            expected = plain.execute(tn, assignment, cache=cache_a, slots=slots_a)
            actual = fused.execute(tn, assignment, cache=cache_b, slots=slots_b)
            assert np.array_equal(
                expected.require_data(), actual.require_data()
            ), assignment

    def test_fused_uncached(self, case, sliced, stepwise_value):
        tn, tree = case
        executor = SlicedExecutor(
            tn, tree, sliced, fused=True, cache_invariant=False
        )
        assert executor.amplitude() == stepwise_value

    def test_fused_without_slots_falls_back_stepwise(self, case, sliced):
        """``run_subtask`` passes no arena, so the fused plan runs stepwise."""
        tn, tree = case
        plain = SlicedExecutor(tn, tree, sliced)
        fused = SlicedExecutor(tn, tree, sliced, fused=True)
        for subtask_id in (0, 3, 7):
            expected = plain.run_subtask(subtask_id).tensor.require_data()
            actual = fused.run_subtask(subtask_id).tensor.require_data()
            assert np.array_equal(expected, actual)
        assert fused.stats.fused_steps == 0

    @pytest.mark.parametrize("cap", [1, 2, 4, 8, 13])
    def test_fused_every_cap(self, case, sliced, stepwise_value, cap):
        tn, tree = case
        executor = SlicedExecutor(tn, tree, sliced, fused=True, fused_cap=cap)
        assert executor.amplitude() == stepwise_value

    def test_fused_with_branch_buffers_flag(self, case, sliced, stepwise_value):
        tn, tree = case
        executor = SlicedExecutor(
            tn, tree, sliced, fused=True, branch_buffers=True
        )
        assert executor.amplitude() == stepwise_value

    def test_fused_auto(self, case, sliced, stepwise_value):
        tn, tree = case
        executor = SlicedExecutor(tn, tree, sliced, fused="auto")
        assert executor.fused
        assert executor.fused_cap == select_fusion_cap(
            tree, frozenset(sliced)
        )
        assert executor.amplitude() == stepwise_value

    def test_fused_auto_with_cost_model(self, case, sliced, stepwise_value):
        tn, tree = case
        executor = SlicedExecutor(
            tn, tree, sliced, fused="auto", cost_model=AnalyticCostModel()
        )
        assert executor.amplitude() == stepwise_value


class TestFusedBackends:
    """Fused plans through every scheduling substrate, bit-identical."""

    @pytest.mark.parametrize(
        "make_backend",
        [
            lambda: SerialBackend(),
            lambda: ThreadPoolBackend(max_workers=2),
            lambda: ThreadPoolBackend(max_workers=3, chunk_size=1),
            lambda: SharedMemoryProcessPoolBackend(max_workers=2),
            lambda: SharedMemoryProcessPoolBackend(max_workers=2, chunk_size=3),
        ],
        ids=["serial", "threads", "threads-chunk1", "pool", "pool-chunk3"],
    )
    def test_fused_backend_bit_identical(
        self, case, sliced, stepwise_value, make_backend
    ):
        tn, tree = case
        executor = SlicedExecutor(
            tn, tree, sliced, fused=True, backend=make_backend()
        )
        assert executor.amplitude() == stepwise_value

    def test_fused_batched_sweep(self, case, sliced):
        """Batched plans fuse what they can and stay bit-identical."""
        tn, tree = case
        for group in ([sliced[0]], sliced[:2], sliced[:3]):
            expected = SlicedExecutor(
                tn, tree, sliced, batch_indices=group
            ).amplitude()
            actual = SlicedExecutor(
                tn, tree, sliced, batch_indices=group, fused=True
            ).amplitude()
            assert actual == expected, group

    def test_fused_session_reuse(self, case, sliced, stepwise_value):
        tn, tree = case
        backend = SharedMemoryProcessPoolBackend(max_workers=2)
        executor = SlicedExecutor(tn, tree, sliced, fused=True, backend=backend)
        with executor.session() as session:
            first = executor.amplitude()
            second = executor.amplitude()
            assert session.pool_launches == 1
            assert session.publications == 1
        assert first == stepwise_value
        assert second == stepwise_value

    def test_fused_plan_pickles(self, case, sliced):
        """Fused plans ship to pool workers unchanged (pickle round-trip)."""
        tn, tree = case
        plan = compile_plan(tn, tree, frozenset(sliced), fused=True)
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.fused
        assert [r.nodes for r in clone.fused_runs] == [
            r.nodes for r in plan.fused_runs
        ]
        slots_a, slots_b = StemSlots(), StemSlots()
        assignment = {ix: 0 for ix in sliced}
        expected = plan.execute(tn, assignment, slots=slots_a).require_data()
        actual = clone.execute(tn, assignment, slots=slots_b).require_data()
        assert np.array_equal(expected, actual)


class TestFusedStats:
    """Instrumentation parity and the fused-kernel stage."""

    def test_node_counts_match_stepwise(self, case, sliced):
        tn, tree = case
        plain = SlicedExecutor(tn, tree, sliced)
        fused = SlicedExecutor(tn, tree, sliced, fused=True)
        plain.run()
        fused.run()
        assert fused.stats.node_counts == plain.stats.node_counts

    def test_invariant_contracted_once(self, case, sliced):
        tn, tree = case
        executor = SlicedExecutor(tn, tree, sliced, fused=True)
        executor.run()
        for node in executor.plan.invariant_nodes:
            assert executor.stats.node_counts.get(node, 0) == 1

    def test_fused_kernel_stage_recorded(self, case, sliced):
        tn, tree = case
        executor = SlicedExecutor(tn, tree, sliced, fused=True)
        executor.run()
        stages = executor.stats.stage_seconds
        assert stages.get("fused_kernel", 0.0) > 0.0
        assert stages["fused_kernel"] <= stages["execute"]

    def test_stats_merge_carries_fused_steps(self, case, sliced):
        from repro.execution import PlanStats

        merged = PlanStats()
        other = PlanStats()
        other.fused_steps = 7
        other.stage_seconds["fused_kernel"] = 0.5
        merged.merge(other)
        assert merged.fused_steps == 7
        assert merged.stage_seconds["fused_kernel"] == 0.5


class TestFusionPass:
    """Structural properties of the fusion pass itself."""

    @given(cap=st.integers(min_value=1, max_value=13))
    @SETTINGS
    def test_groups_respect_working_set_cap(self, cap):
        tn, tree = _case()
        sliced = sorted(tn.inner_indices())[:4]
        plan = compile_plan(tn, tree, frozenset(sliced), fused=True, fused_cap=cap)
        for run in plan.fused_runs + plan.fused_runs_cached:
            assert isinstance(run, FusedRun)
            assert run.num_steps >= 2
            assert run.kept_rank <= cap

    def test_runs_cover_contiguous_stem_chains(self, case, sliced):
        tn, tree = case
        plan = compile_plan(tn, tree, frozenset(sliced), fused=True)
        stem_nodes = [step.node for step in extract_stem(tree).steps]
        for run in plan.fused_runs:
            positions = [stem_nodes.index(node) for node in run.nodes]
            assert positions == list(
                range(positions[0], positions[0] + len(positions))
            )

    def test_cached_runs_are_dependent_only(self, case, sliced):
        tn, tree = case
        plan = compile_plan(tn, tree, frozenset(sliced), fused=True)
        for run in plan.fused_runs_cached:
            for node in run.nodes:
                assert node in plan.dependent_nodes

    def test_identity_flags_match_permutations(self, case, sliced):
        tn, tree = case
        plan = compile_plan(tn, tree, frozenset(sliced), fused=True)
        for step in plan._steps:
            if step.td_perm_lhs is not None:
                assert step.td_lhs_identity == (
                    step.td_perm_lhs == tuple(range(len(step.td_perm_lhs)))
                )
            if step.td_perm_rhs is not None:
                assert step.td_rhs_identity == (
                    step.td_perm_rhs == tuple(range(len(step.td_perm_rhs)))
                )

    def test_fused_requires_compiled_mode(self, case, sliced):
        tn, tree = case
        with pytest.raises(ValueError, match="compiled"):
            SlicedExecutor(tn, tree, sliced, mode="reference", fused=True)

    def test_fused_cap_requires_fused(self, case, sliced):
        tn, tree = case
        with pytest.raises(ValueError, match="fused_cap"):
            SlicedExecutor(tn, tree, sliced, fused_cap=4)

    def test_bad_fused_spec_rejected(self, case, sliced):
        tn, tree = case
        with pytest.raises(ValueError, match="fused"):
            SlicedExecutor(tn, tree, sliced, fused="yes-please")


class TestPermKernels:
    """Every kernel strategy reproduces ``np.transpose`` exactly."""

    @given(
        rank=st.integers(min_value=2, max_value=7),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @SETTINGS
    def test_kernel_matches_transpose(self, rank, seed):
        rng = np.random.default_rng(seed)
        perm = tuple(int(x) for x in rng.permutation(rank))
        shape = tuple(int(x) for x in rng.integers(1, 4, size=rank))
        split = int(rng.integers(0, rank + 1))
        target_shape = tuple(shape[axis] for axis in perm)
        m = int(np.prod(target_shape[:split], dtype=np.int64))
        k = int(np.prod(target_shape[split:], dtype=np.int64))
        kernel = _perm_kernel(perm, shape, (m, k))
        array = rng.standard_normal(shape).astype(np.float64)
        slots = StemSlots()
        expected = np.transpose(array, perm).reshape(m, k)
        actual = kernel.apply(array, "test", slots)
        assert np.array_equal(expected, actual)

    def test_strategies_cover_all_three(self, case, sliced):
        tn, tree = case
        plan = compile_plan(tn, tree, frozenset(sliced), fused=True)
        strategies = set()
        for run in plan.fused_runs:
            for op in run.ops:
                strategies.add(op.perm_lhs.strategy)
                strategies.add(op.perm_rhs.strategy)
        assert strategies <= {"view", "gather", "copy"}
        assert strategies  # at least one kernel compiled


class TestScratchArena:
    """The named scratch buffers behind the permutation staging."""

    def test_views_are_memoized(self):
        slots = StemSlots()
        first = slots.scratch("k", (4, 4), np.dtype(np.complex64))
        second = slots.scratch("k", (4, 4), np.dtype(np.complex64))
        assert first is second

    def test_outgrown_buffer_generations_are_dropped(self):
        """A long-lived arena retains one buffer generation per key."""
        slots = StemSlots()
        dtype = np.dtype(np.complex64)
        small = slots.scratch("k", (4, 4), dtype)
        # growing the buffer retires the old generation and its views
        big = slots.scratch("k", (64, 64), dtype)
        assert slots.scratch("k", (4, 4), dtype) is not small
        assert slots.scratch("k", (4, 4), dtype).base is big.base
        assert slots.scratch_bytes == big.base.nbytes

    def test_retype_drops_views_too(self):
        slots = StemSlots()
        c64 = slots.scratch("k", (8,), np.dtype(np.complex64))
        c128 = slots.scratch("k", (8,), np.dtype(np.complex128))
        assert c128.dtype == np.complex128
        assert slots.scratch("k", (8,), np.dtype(np.complex128)) is c128
        assert c64.dtype == np.complex64  # old view untouched, just retired


class TestBatchedGemmFusion:
    """The ``bmm`` extension: batch sweeps run inside fused runs."""

    def test_batched_plan_fuses_bmm_steps(self, case, sliced):
        tn, tree = case
        plan = compile_plan(
            tn, tree, frozenset(sliced), fused=True, batch_indices=[sliced[0]]
        )
        assert plan.fused_runs
        # tape entry layout: index 9 is the is_bmm flag
        bmm_entries = [
            entry for run in plan.fused_runs for entry in run.tape if entry[9]
        ]
        assert bmm_entries, "no batched-GEMM step landed inside a fused run"

    def test_batched_fused_matches_batched_stepwise(self, case, sliced):
        tn, tree = case
        for group in ([sliced[0]], sliced[:2]):
            expected = SlicedExecutor(
                tn, tree, sliced, batch_indices=group
            ).amplitude()
            actual = SlicedExecutor(
                tn, tree, sliced, batch_indices=group, fused=True
            ).amplitude()
            assert actual == expected, group

    @given(batch_size=st.integers(min_value=1, max_value=3))
    @SETTINGS
    def test_property_any_batch_group(self, batch_size):
        tn, tree = _case()
        sliced = sorted(tn.inner_indices())[:4]
        group = sliced[:batch_size]
        expected = SlicedExecutor(
            tn, tree, sliced, batch_indices=group
        ).amplitude()
        actual = SlicedExecutor(
            tn, tree, sliced, batch_indices=group, fused=True
        ).amplitude()
        assert actual == expected


class TestFusionBreaks:
    """Split reasons surface on the plan and in ``PlanStats``."""

    KINDS = {"missing-step", "einsum", "no-layout", "no-slot", "short-chain"}

    def test_tight_cap_reports_short_chains(self, case, sliced):
        tn, tree = case
        plan = compile_plan(
            tn, tree, frozenset(sliced), fused=True, fused_cap=1
        )
        assert plan.fusion_breaks.get("short-chain", 0) > 0
        assert set(plan.fusion_breaks) <= self.KINDS

    def test_loose_cap_reports_none(self, case, sliced):
        tn, tree = case
        plan = compile_plan(tn, tree, frozenset(sliced), fused=True)
        assert set(plan.fusion_breaks) <= self.KINDS

    def test_breaks_land_in_executor_stats(self, case, sliced):
        tn, tree = case
        executor = SlicedExecutor(tn, tree, sliced, fused=True, fused_cap=1)
        assert executor.stats.fusion_breaks == executor.plan.fusion_breaks
        assert executor.stats.fusion_breaks.get("short-chain", 0) > 0

    def test_stats_merge_keeps_first_breaks_and_latest_engine(self):
        from repro.execution import PlanStats

        merged = PlanStats()
        merged.fusion_breaks = {"short-chain": 2}
        worker = PlanStats()
        worker.fusion_breaks = {"einsum": 1}
        worker.tape_engine = "native"
        merged.merge(worker)
        # compile-time facts keep the first non-empty record; the engine
        # reflects what actually ran (worker wins)
        assert merged.fusion_breaks == {"short-chain": 2}
        assert merged.tape_engine == "native"


class TestFusionCostModel:
    """Cost-model-ranked cap selection."""

    def test_rank_and_select(self, case, sliced):
        _, tree = case
        ranked = rank_fusion_caps(tree, frozenset(sliced))
        assert ranked
        caps = [cap for cap, _ in ranked]
        seconds = [s for _, s in ranked]
        assert seconds == sorted(seconds)
        assert select_fusion_cap(tree, frozenset(sliced)) == caps[0]
        for _, predicted in ranked:
            assert predicted > 0

    def test_larger_cap_never_predicted_slower(self, case, sliced):
        """A cap >= the stem's peak rank fuses maximally: minimal traffic."""
        _, tree = case
        sliced_set = frozenset(sliced)
        stem = extract_stem(tree)
        ranks = [len(step.result_indices - sliced_set) for step in stem.steps]
        peak = max(ranks)
        loose = predicted_fused_seconds(tree, sliced_set, cap=peak)
        tight = predicted_fused_seconds(tree, sliced_set, cap=1)
        assert loose <= tight

    def test_calibrated_overhead_charged_per_group(self, case, sliced):
        from repro.costs import BackendCoefficients, CalibratedCostModel

        _, tree = case
        model = CalibratedCostModel(
            {"serial": BackendCoefficients(1e-12, 1e-3, samples=4)}
        )
        ranked = rank_fusion_caps(
            tree, frozenset(sliced), cost_model=model, backend="serial"
        )
        baseline = rank_fusion_caps(tree, frozenset(sliced))
        overheads = dict(ranked)
        for cap, seconds in baseline:
            # the calibrated per-step term adds a positive per-group cost
            assert overheads[cap] > seconds

    def test_short_stem_declines_fusion(self):
        tn, tree = _case(num_qubits=2, depth=1, seed=3)
        cap = select_fusion_cap(tree, frozenset())
        if extract_stem(tree).length < 2:
            assert cap is None
        else:
            assert isinstance(cap, int) and cap >= 1
        # "auto" on a nothing-to-fuse workload quietly stays step-by-step
        executor = SlicedExecutor(tn, tree, [], fused="auto")
        reference = SlicedExecutor(tn, tree, []).amplitude()
        assert executor.amplitude() == reference
