"""Tests of the execution engines: tree executor, sliced executor, thread-level
simulator and the process-level scaling model."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.circuits import amplitude, random_brickwork_circuit
from repro.core import LifetimeSliceFinder, SecondarySlicer, extract_stem
from repro.execution import (
    GORDON_BELL_2021_PFLOPS,
    HeadlineProjection,
    ProcessScheduler,
    SlicedExecutor,
    ThreadLevelSimulator,
    TreeExecutor,
    contract_tree,
    strong_scaling,
    weak_scaling,
)
from repro.paths import GreedyOptimizer
from repro.tensornet import amplitude_network, simplify_network


@pytest.fixture(scope="module")
def concrete_case():
    """A concrete network + tree + reference amplitude for execution tests."""
    circ = random_brickwork_circuit(6, 4, seed=13)
    bits = (1, 0, 1, 1, 0, 0)
    tn = amplitude_network(circ, bits)
    simplify_network(tn)
    tree = GreedyOptimizer(seed=1).tree(tn)
    return tn, tree, amplitude(circ, bits)


class TestTreeExecutor:
    def test_matches_statevector(self, concrete_case):
        tn, tree, reference = concrete_case
        assert TreeExecutor().amplitude(tn, tree) == pytest.approx(reference, abs=1e-9)

    def test_contract_tree_helper(self, concrete_case):
        tn, tree, reference = concrete_case
        result = contract_tree(tn, tree)
        assert complex(result.require_data()) == pytest.approx(reference, abs=1e-9)

    def test_single_precision_execution(self, concrete_case):
        tn, tree, reference = concrete_case
        value = TreeExecutor(dtype=np.complex64).amplitude(tn, tree)
        assert value == pytest.approx(reference, abs=1e-4)

    def test_fixed_indices_consistency(self, concrete_case):
        tn, tree, reference = concrete_case
        inner = sorted(tn.inner_indices())[:2]
        total = 0.0 + 0.0j
        for v0 in range(2):
            for v1 in range(2):
                total += TreeExecutor().amplitude(tn, tree, {inner[0]: v0, inner[1]: v1})
        assert total == pytest.approx(reference, abs=1e-9)

    def test_abstract_network_rejected(self, concrete_case):
        _, tree, _ = concrete_case
        circ = random_brickwork_circuit(6, 4, seed=13)
        abstract = amplitude_network(circ, (1, 0, 1, 1, 0, 0), concrete=False)
        simplify_network(abstract)
        with pytest.raises(ValueError):
            TreeExecutor().execute(abstract, GreedyOptimizer(seed=1).tree(abstract))


class TestSlicedExecutor:
    @pytest.mark.parametrize("num_sliced", [1, 2, 3])
    def test_sliced_sum_equals_unsliced(self, concrete_case, num_sliced):
        tn, tree, reference = concrete_case
        sliced = sorted(tn.inner_indices())[:num_sliced]
        executor = SlicedExecutor(tn, tree, sliced)
        assert executor.num_subtasks == 2**num_sliced
        assert executor.amplitude() == pytest.approx(reference, abs=1e-9)

    def test_lifetime_finder_slices_execute_correctly(self, concrete_case):
        tn, tree, reference = concrete_case
        target = max(tree.max_rank() - 2, 2)
        slicing = LifetimeSliceFinder(target).find(tree)
        inner = tn.inner_indices()
        usable = frozenset(ix for ix in slicing.sliced if ix in inner)
        executor = SlicedExecutor(tn, tree, usable)
        assert executor.amplitude() == pytest.approx(reference, abs=1e-9)

    def test_assignment_decoding_roundtrip(self, concrete_case):
        tn, tree, _ = concrete_case
        sliced = sorted(tn.inner_indices())[:3]
        executor = SlicedExecutor(tn, tree, sliced)
        seen = set()
        for sid in range(executor.num_subtasks):
            assignment = executor.assignment(sid)
            seen.add(tuple(assignment[ix] for ix in executor.sliced))
        assert len(seen) == executor.num_subtasks

    def test_assignment_out_of_range(self, concrete_case):
        tn, tree, _ = concrete_case
        executor = SlicedExecutor(tn, tree, sorted(tn.inner_indices())[:1])
        with pytest.raises(ValueError):
            executor.assignment(5)

    def test_partial_subtasks_give_partial_sum(self, concrete_case):
        tn, tree, reference = concrete_case
        sliced = sorted(tn.inner_indices())[:2]
        executor = SlicedExecutor(tn, tree, sliced)
        total = sum(
            complex(executor.run([sid]).require_data()) for sid in range(executor.num_subtasks)
        )
        assert total == pytest.approx(reference, abs=1e-9)

    def test_open_index_slicing_rejected(self, concrete_case):
        tn, tree, _ = concrete_case
        circ = random_brickwork_circuit(3, 2, seed=1)
        from repro.tensornet import CircuitToTensorNetwork

        open_tn = CircuitToTensorNetwork().convert(circ).network
        open_tree = GreedyOptimizer(seed=0).tree(open_tn)
        open_index = sorted(open_tn.output_indices())[0]
        with pytest.raises(ValueError):
            SlicedExecutor(open_tn, open_tree, [open_index])

    def test_cost_estimates_match_tree(self, concrete_case):
        tn, tree, _ = concrete_case
        sliced = frozenset(sorted(tn.inner_indices())[:2])
        executor = SlicedExecutor(tn, tree, sliced)
        assert executor.subtask_cost_estimate() == pytest.approx(tree.contraction_cost(sliced))
        assert executor.total_cost_estimate() == pytest.approx(tree.total_cost(sliced))


class TestThreadLevelSimulator:
    @pytest.fixture(scope="class")
    def timings(self, grid_tree, grid_stem):
        target = max(grid_tree.max_rank() - 4, 4)
        slicing = LifetimeSliceFinder(target).find(grid_tree, stem=grid_stem)
        simulator = ThreadLevelSimulator()
        plan = SecondarySlicer(ldm_rank=max(target - 3, 3)).plan(
            grid_stem, process_sliced=slicing.sliced
        )
        return {
            "step": simulator.simulate_step_by_step(grid_stem, slicing.sliced),
            "fused": simulator.simulate_fused(plan, slicing.sliced),
            "simulator": simulator,
        }

    def test_components_positive(self, timings):
        for key in ("step", "fused"):
            timing = timings[key]
            assert timing.total_seconds > 0
            assert timing.gemm_seconds > 0
            assert timing.flops > 0
            assert timing.dma_bytes > 0

    def test_flops_identical_between_schedules(self, timings):
        # fusion changes data movement, never the arithmetic performed
        assert timings["fused"].flops == pytest.approx(timings["step"].flops, rel=1e-9)

    def test_fused_moves_fewer_bytes(self, timings):
        assert timings["fused"].dma_bytes <= timings["step"].dma_bytes + 1e-9

    def test_fused_has_higher_arithmetic_intensity(self, timings):
        assert timings["fused"].arithmetic_intensity >= timings["step"].arithmetic_intensity

    def test_breakdown_keys(self, timings):
        breakdown = timings["fused"].breakdown()
        assert set(breakdown) == {"memory_access", "rma", "permutation", "gemm", "total"}
        assert breakdown["total"] == pytest.approx(timings["fused"].total_seconds)

    def test_roofline_point(self, timings):
        model = timings["simulator"].roofline()
        point = timings["fused"].roofline_point()
        assert point.achieved_flops <= model.peak_flops * 1.001

    def test_compare_helper(self, grid_stem, grid_tree):
        target = max(grid_tree.max_rank() - 4, 4)
        slicing = LifetimeSliceFinder(target).find(grid_tree, stem=grid_stem)
        results = ThreadLevelSimulator().compare(grid_stem, slicing.sliced)
        assert set(results) == {"step-by-step", "fused"}

    def test_naive_scattered_dma_is_much_slower(self, grid_stem, grid_tree):
        target = max(grid_tree.max_rank() - 4, 4)
        slicing = LifetimeSliceFinder(target).find(grid_tree, stem=grid_stem)
        plan = SecondarySlicer(ldm_rank=max(target - 3, 3)).plan(
            grid_stem, process_sliced=slicing.sliced
        )
        coop = ThreadLevelSimulator(cooperative_dma=True).simulate_fused(plan, slicing.sliced)
        naive = ThreadLevelSimulator(cooperative_dma=False).simulate_fused(plan, slicing.sliced)
        assert naive.memory_access_seconds > coop.memory_access_seconds * 5

    def test_in_situ_permutation_penalty(self, grid_stem, grid_tree):
        target = max(grid_tree.max_rank() - 4, 4)
        slicing = LifetimeSliceFinder(target).find(grid_tree, stem=grid_stem)
        fast = ThreadLevelSimulator(reduced_permutation_maps=True).simulate_step_by_step(
            grid_stem, slicing.sliced
        )
        slow = ThreadLevelSimulator(reduced_permutation_maps=False).simulate_step_by_step(
            grid_stem, slicing.sliced
        )
        assert slow.permutation_seconds == pytest.approx(10.0 * fast.permutation_seconds)


class TestProcessScheduler:
    def test_distribution_arithmetic(self):
        scheduler = ProcessScheduler(subtask_seconds=1.0, subtask_flops=1e12)
        assert scheduler.subtasks_on_slowest_node(65536, 1024) == 64
        assert scheduler.subtasks_on_slowest_node(65537, 1024) == 65
        assert scheduler.compute_seconds(65536, 1024) == pytest.approx(64.0)

    def test_reduce_cost_grows_logarithmically(self):
        scheduler = ProcessScheduler(subtask_seconds=1.0, subtask_flops=1e12)
        assert scheduler.reduce_seconds(1) == 0.0
        assert scheduler.reduce_seconds(1024) == pytest.approx(
            10 * scheduler.reduce_seconds(2), rel=1e-9
        )

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ProcessScheduler(subtask_seconds=0.0, subtask_flops=1.0)
        scheduler = ProcessScheduler(subtask_seconds=1.0, subtask_flops=1.0)
        with pytest.raises(ValueError):
            scheduler.compute_seconds(10, 0)

    def test_strong_scaling_curve(self):
        scheduler = ProcessScheduler(subtask_seconds=0.5, subtask_flops=1e12)
        points = strong_scaling(scheduler, num_subtasks=65536, node_counts=[64, 256, 1024])
        assert [p.num_nodes for p in points] == [64, 256, 1024]
        assert points[0].speedup == pytest.approx(1.0)
        # elapsed time strictly decreases, efficiency stays within (0, 1]
        times = [p.elapsed_seconds for p in points]
        assert times == sorted(times, reverse=True)
        for p in points:
            assert 0 < p.efficiency <= 1.0 + 1e-9
            assert p.sustained_flops > 0

    def test_strong_scaling_near_ideal_for_large_subtasks(self):
        scheduler = ProcessScheduler(subtask_seconds=5.0, subtask_flops=1e14)
        points = strong_scaling(scheduler, num_subtasks=65536, node_counts=[256, 512, 1024])
        assert all(p.efficiency > 0.95 for p in points)

    def test_weak_scaling_flat(self):
        scheduler = ProcessScheduler(subtask_seconds=2.0, subtask_flops=1e13)
        points = weak_scaling(scheduler, subtasks_per_node=16, node_counts=[64, 256, 1024])
        assert all(p.num_subtasks == 16 * p.num_nodes for p in points)
        assert all(p.efficiency > 0.9 for p in points)

    def test_empty_node_counts_rejected(self):
        scheduler = ProcessScheduler(subtask_seconds=1.0, subtask_flops=1.0)
        with pytest.raises(ValueError):
            strong_scaling(scheduler, node_counts=[])
        with pytest.raises(ValueError):
            weak_scaling(scheduler, node_counts=[])


class TestHeadlineProjection:
    def test_paper_arithmetic(self):
        # the paper: 10098.5 s on 1024 nodes -> 96.1 s on 107520 nodes
        projection = HeadlineProjection(
            measured_nodes=1024,
            measured_seconds=10098.5,
            projected_nodes=107_520,
            total_flops=308.6e15 * 96.1,
        )
        assert projection.projected_seconds == pytest.approx(96.17, abs=0.1)
        assert projection.projected_cores == 41_932_800
        assert projection.sustained_pflops == pytest.approx(308.6, rel=0.01)
        assert projection.speedup_over_gordon_bell() == pytest.approx(
            308.6 / GORDON_BELL_2021_PFLOPS, rel=0.01
        )
        assert 0 < projection.peak_fraction < 1

    def test_summary_keys(self):
        projection = HeadlineProjection(1024, 100.0, 2048, 1e18)
        summary = projection.summary()
        assert summary["projected_seconds"] == pytest.approx(50.0)
        assert {"sustained_pflops", "speedup_over_gb2021", "projected_cores"} <= set(summary)
