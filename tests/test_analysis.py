"""Tests of the analysis / reporting helpers used by the benchmark harness."""

from __future__ import annotations

import math

import pytest

from repro.analysis import (
    compare_slicers,
    format_kv,
    format_series,
    format_table,
    slicing_summary,
    stem_summary,
    summarize_distribution,
    tree_summary,
)
from repro.core import GreedySliceBaseline, LifetimeSliceFinder


class TestFormatting:
    def test_format_table_alignment_and_content(self):
        rows = [
            {"name": "a", "value": 1.2345678, "flag": True},
            {"name": "bee", "value": 1e-7, "flag": False},
        ]
        text = format_table(rows, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1] and "value" in lines[1]
        assert "bee" in text and "yes" in text and "no" in text

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="empty")

    def test_format_table_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, columns=["b"])
        assert "b" in text and "a" not in text.splitlines()[0]

    def test_format_series(self):
        text = format_series([1.0, 2.0], {"y": [10.0, 20.0]}, x_label="t", title="s")
        assert "t" in text and "y" in text and "20" in text

    def test_format_series_short_series_padded_with_nan(self):
        text = format_series([1.0, 2.0], {"y": [10.0]})
        assert "nan" in text

    def test_format_kv(self):
        text = format_kv({"alpha": 1.0, "beta_long_key": "x"}, title="kv")
        lines = text.splitlines()
        assert lines[0] == "kv"
        assert any(line.strip().startswith("alpha") for line in lines)

    def test_summarize_distribution(self):
        stats = summarize_distribution([3.0, 1.0, 2.0, 4.0])
        assert stats["min"] == 1.0
        assert stats["max"] == 4.0
        assert stats["median"] == pytest.approx(2.5)
        assert stats["mean"] == pytest.approx(2.5)
        assert summarize_distribution([]) == {"count": 0.0}


class TestSummaries:
    def test_tree_summary_keys(self, grid_tree):
        summary = tree_summary(grid_tree)
        assert summary["num_leaves"] == grid_tree.num_leaves
        assert summary["max_rank"] == grid_tree.max_rank()
        assert summary["log10_flops"] == pytest.approx(grid_tree.log10_total_cost())
        assert summary["log2_flops"] == pytest.approx(
            grid_tree.log10_total_cost() / math.log10(2.0)
        )

    def test_stem_summary(self, grid_stem):
        summary = stem_summary(grid_stem)
        assert summary["length"] == grid_stem.length
        assert 0 < summary["cost_fraction"] <= 1.0

    def test_slicing_summary_and_compare(self, grid_tree, grid_cost_model, grid_target_rank):
        ours = LifetimeSliceFinder(grid_target_rank).find(grid_tree, cost_model=grid_cost_model)
        base = GreedySliceBaseline(grid_target_rank).find(grid_tree, cost_model=grid_cost_model)
        summary = slicing_summary(ours)
        assert summary["num_sliced"] == ours.num_sliced
        assert summary["overhead"] == pytest.approx(ours.overhead)
        rows = compare_slicers(grid_tree, {"ours": ours, "baseline": base})
        assert len(rows) == 2
        assert {row["method"] for row in rows} == {"ours", "baseline"}
