"""Tests of correlated-sample batches and the XEB estimator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import StateVectorSimulator, random_brickwork_circuit
from repro.execution.sampling import (
    CorrelatedSampleBatch,
    CorrelatedSampler,
    linear_xeb_fidelity,
)


@pytest.fixture(scope="module")
def sampler_case():
    circuit = random_brickwork_circuit(6, 4, seed=21)
    base = (1, 0, 0, 1, 0, 1)
    sampler = CorrelatedSampler(circuit, open_qubits=(1, 4), max_trials=4, seed=0)
    batch = sampler.compute_batch(base)
    reference = StateVectorSimulator(6).run(circuit)
    return circuit, base, sampler, batch, reference


class TestCorrelatedBatch:
    def test_batch_shape(self, sampler_case):
        _, _, sampler, batch, _ = sampler_case
        assert batch.open_qubits == (1, 4)
        assert batch.amplitudes.shape == (2, 2)
        assert batch.num_samples == 4
        assert batch.num_open_qubits == 2

    def test_amplitudes_match_statevector(self, sampler_case):
        circuit, base, _, batch, reference = sampler_case
        for b1 in range(2):
            for b4 in range(2):
                bits = list(base)
                bits[1], bits[4] = b1, b4
                assert batch.amplitudes[b1, b4] == pytest.approx(
                    reference.amplitude(bits), abs=1e-9
                )
                assert batch.amplitude_of(bits) == pytest.approx(
                    reference.amplitude(bits), abs=1e-9
                )

    def test_bitstrings_enumeration(self, sampler_case):
        _, base, _, batch, _ = sampler_case
        strings = batch.bitstrings()
        assert strings.shape == (4, 6)
        # closed qubits keep the base value on every row
        for q in (0, 2, 3, 5):
            assert np.all(strings[:, q] == base[q])
        # open qubits enumerate all four combinations
        assert len({tuple(row[[1, 4]]) for row in strings}) == 4

    def test_amplitude_of_rejects_wrong_base(self, sampler_case):
        _, base, _, batch, _ = sampler_case
        bits = list(base)
        bits[0] ^= 1  # flip a closed qubit
        with pytest.raises(ValueError):
            batch.amplitude_of(bits)
        with pytest.raises(ValueError):
            batch.amplitude_of(bits[:-1])

    def test_probabilities_and_sampling(self, sampler_case):
        _, _, _, batch, _ = sampler_case
        probs = batch.probabilities()
        assert probs.shape == (4,)
        assert np.all(probs >= 0)
        draws = batch.sample(32, seed=3)
        assert draws.shape == (32, 6)
        assert set(np.unique(draws)) <= {0, 1}

    def test_sliced_batch_matches_unsliced(self, sampler_case):
        circuit, base, _, batch, _ = sampler_case
        sampler = CorrelatedSampler(circuit, open_qubits=(1, 4), max_trials=4, seed=1)
        network, _, _ = sampler.build_network(base, concrete=True)
        inner = sorted(network.inner_indices())[:2]
        sliced_batch = sampler.compute_batch(base, sliced=inner)
        assert np.allclose(sliced_batch.amplitudes, batch.amplitudes, atol=1e-9)

    def test_target_rank_driven_slicing(self):
        circuit = random_brickwork_circuit(6, 4, seed=22)
        sampler = CorrelatedSampler(
            circuit, open_qubits=(0, 5), target_rank=4, max_trials=4, seed=2
        )
        batch = sampler.compute_batch([0] * 6)
        reference = StateVectorSimulator(6).run(circuit)
        bits = [0] * 6
        assert batch.amplitude_of(bits) == pytest.approx(reference.amplitude(bits), abs=1e-8)


class TestSamplerValidation:
    def test_requires_open_qubits(self):
        circuit = random_brickwork_circuit(4, 2, seed=0)
        with pytest.raises(ValueError):
            CorrelatedSampler(circuit, open_qubits=())

    def test_open_qubit_range_checked(self):
        circuit = random_brickwork_circuit(4, 2, seed=0)
        with pytest.raises(ValueError):
            CorrelatedSampler(circuit, open_qubits=(9,))

    def test_base_bitstring_length_checked(self):
        circuit = random_brickwork_circuit(4, 2, seed=0)
        sampler = CorrelatedSampler(circuit, open_qubits=(0,))
        with pytest.raises(ValueError):
            sampler.build_network([0, 1])


class TestXEB:
    def test_ideal_device_scores_one_on_porter_thomas(self):
        # exponential (Porter-Thomas) probabilities: <p over samples drawn
        # from p> = 2/2^n, so F = 1
        rng = np.random.default_rng(0)
        n = 10
        dim = 2**n
        probs = rng.exponential(1.0 / dim, size=dim)
        probs /= probs.sum()
        draws = rng.choice(dim, size=20000, p=probs)
        fidelity = linear_xeb_fidelity(probs[draws], n)
        assert fidelity == pytest.approx(1.0, abs=0.15)

    def test_uniform_sampler_scores_zero(self):
        rng = np.random.default_rng(1)
        n = 10
        dim = 2**n
        probs = rng.exponential(1.0 / dim, size=dim)
        probs /= probs.sum()
        draws = rng.integers(0, dim, size=20000)
        fidelity = linear_xeb_fidelity(probs[draws], n)
        assert fidelity == pytest.approx(0.0, abs=0.15)

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            linear_xeb_fidelity([], 4)
