"""Tests of the SW26010pro hardware model (spec, memory hierarchy, DMA/RMA, GEMM, roofline)."""

from __future__ import annotations

import math

import pytest

from repro.hardware import (
    COMPLEX64_BYTES,
    DMAEngine,
    GEMMModel,
    GEMMShape,
    MemoryHierarchy,
    RMAEngine,
    RooflineModel,
    RooflinePoint,
    SW26010PRO,
    StorageLevel,
    SunwaySpec,
    cooperative_transfer_time,
    naive_strided_transfer_time,
    sunway_hierarchy,
)


class TestSpec:
    def test_documented_constants(self):
        spec = SW26010PRO
        assert spec.cgs_per_node == 6
        assert spec.cpes_per_cg == 64
        assert spec.ldm_bytes == 256 * 1024
        assert spec.main_memory_per_cg_bytes == 16 * 1024**3
        assert spec.dma_bandwidth == pytest.approx(51.2e9)
        assert spec.rma_bandwidth == pytest.approx(800e9)
        assert spec.arithmetic_intensity_ridge == pytest.approx(42.3)

    def test_derived_core_counts(self):
        # the paper's 390 cores per node and 41,932,800 cores on 107,520 nodes
        assert SW26010PRO.cores_per_node == 390
        assert SW26010PRO.cores_per_node * 107_520 == 41_932_800

    def test_united_main_memory_is_96gb(self):
        assert SW26010PRO.main_memory_per_node_bytes == 96 * 1024**3

    def test_peak_flops_consistency(self):
        spec = SW26010PRO
        assert spec.peak_flops_per_cg == pytest.approx(42.3 * 51.2e9)
        assert spec.peak_flops_per_node == pytest.approx(6 * spec.peak_flops_per_cg)
        assert spec.peak_flops_per_cpe == pytest.approx(spec.peak_flops_per_cg / 64)
        assert spec.peak_flops_system(2) == pytest.approx(2 * spec.peak_flops_per_node)

    def test_ldm_rank_13(self):
        # 256 KB of single-precision complex with room for operands = rank 13
        assert SW26010PRO.ldm_max_rank(COMPLEX64_BYTES) == 13

    def test_main_memory_rank(self):
        # 96 GB of single-precision complex holds a rank-33 tensor
        assert SW26010PRO.main_memory_max_rank(united=True) == 33
        assert SW26010PRO.main_memory_max_rank(united=False) == 31

    def test_with_overrides(self):
        fat = SW26010PRO.with_overrides(ldm_bytes=1024 * 1024)
        assert fat.ldm_bytes == 1024 * 1024
        assert SW26010PRO.ldm_bytes == 256 * 1024  # original untouched


class TestMemoryHierarchy:
    def test_sunway_hierarchy_levels(self):
        h = sunway_hierarchy()
        assert [lvl.name for lvl in h] == ["disk", "main_memory", "ldm"]
        assert len(h) == 3
        assert h.level("ldm").capacity_bytes == SW26010PRO.ldm_bytes

    def test_boundaries(self):
        h = sunway_hierarchy()
        names = [(o.name, i.name) for o, i in h.boundaries()]
        assert names == [("disk", "main_memory"), ("main_memory", "ldm")]
        assert h.inner_of("main_memory").name == "ldm"
        assert h.inner_of("ldm") is None

    def test_level_lookup_error(self):
        with pytest.raises(KeyError):
            sunway_hierarchy().level("tape")

    def test_max_ranks(self):
        h = sunway_hierarchy()
        ranks = h.max_rank_per_level()
        assert ranks["ldm"] < ranks["main_memory"] < ranks["disk"]

    def test_target_rank_reserves_working_set(self):
        h = sunway_hierarchy()
        assert h.target_rank_for("ldm") <= h.level("ldm").max_rank()

    def test_per_cg_main_memory(self):
        h = sunway_hierarchy(united_main_memory=False)
        assert h.level("main_memory").capacity_bytes == SW26010PRO.main_memory_per_cg_bytes

    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryHierarchy([])
        with pytest.raises(ValueError):
            MemoryHierarchy(
                [StorageLevel("a", 10.0), StorageLevel("a", 10.0)]
            )

    def test_storage_level_rank(self):
        lvl = StorageLevel("x", capacity_bytes=float(2**20))
        assert lvl.max_rank(element_bytes=8) == 17
        assert lvl.max_rank(element_bytes=8, reserve_factor=4.0) == 15
        assert StorageLevel("inf", math.inf).max_rank() == 64


class TestDMAModels:
    def test_paper_anchor_points(self):
        dma = DMAEngine()
        # >=50% of peak at 512 B granularity, <1% for element-wise access
        assert dma.efficiency(512.0) == pytest.approx(0.5)
        assert dma.efficiency(8.0) < 0.02
        assert dma.efficiency(1e9) > 0.99

    def test_transfer_time_scales(self):
        dma = DMAEngine()
        assert dma.transfer_time(1e6, 512.0) == pytest.approx(
            2 * dma.transfer_time(0.5e6, 512.0)
        )
        assert dma.transfer_time(0.0, 512.0) == 0.0
        assert dma.transfer_time(1.0, 0.0) == math.inf

    def test_rma_is_faster_than_dma_at_same_granularity(self):
        dma, rma = DMAEngine(), RMAEngine()
        assert rma.effective_bandwidth(2048.0) > dma.effective_bandwidth(2048.0)

    def test_cooperative_beats_naive_for_scattered_data(self):
        num_bytes = 64 * 2**13 * COMPLEX64_BYTES
        naive = naive_strided_transfer_time(num_bytes, contiguous_run_bytes=8.0)
        coop = cooperative_transfer_time(num_bytes)
        assert coop.total_seconds < naive.total_seconds
        # the paper quotes orders of magnitude; require at least 10x here
        assert naive.total_seconds / coop.total_seconds > 10.0

    def test_cooperative_breakdown_fields(self):
        t = cooperative_transfer_time(1e6)
        assert t.dma_seconds > 0 and t.rma_seconds > 0
        assert t.total_seconds == pytest.approx(t.dma_seconds + t.rma_seconds)
        assert t.effective_bandwidth > 0


class TestGEMMModel:
    def test_square_gemm_is_compute_bound_and_efficient(self):
        model = GEMMModel()
        estimate = model.estimate(GEMMShape(256, 256, 256))
        assert not estimate.memory_bound
        assert estimate.efficiency > 0.5

    def test_narrow_gemm_is_memory_bound(self):
        model = GEMMModel()
        estimate = model.estimate(GEMMShape(4096, 2, 2))
        assert GEMMShape(4096, 2, 2).is_narrow
        assert estimate.memory_bound
        assert estimate.efficiency < 0.2

    def test_flops_and_intensity(self):
        shape = GEMMShape(8, 8, 8)
        assert shape.flops == pytest.approx(8 * 8 * 8 * 8)
        assert shape.arithmetic_intensity > 0
        # the paper's criterion: narrow when at least two extents are < 16
        assert shape.is_narrow
        assert not GEMMShape(32, 32, 8).is_narrow

    def test_achievable_fraction_bounds(self):
        model = GEMMModel()
        for shape in (GEMMShape(1, 1, 1), GEMMShape(2, 2, 1024), GEMMShape(64, 64, 64)):
            fraction = model.achievable_fraction(shape)
            assert 0.0 < fraction <= SW26010PRO.gemm_peak_fraction + 1e-12

    def test_contraction_shape_mapping(self):
        model = GEMMModel()
        shape = model.contraction_shape(left_log2=20.0, right_log2=8.0, contracted_log2=4.0)
        assert shape.k == 16
        assert shape.m == 2 ** (20 - 4)
        assert shape.n == 2 ** (8 - 4)

    def test_seconds_positive(self):
        assert GEMMModel().seconds(GEMMShape(32, 32, 32)) > 0


class TestRoofline:
    def test_ridge_point_matches_spec(self):
        model = RooflineModel()
        assert model.ridge_point == pytest.approx(42.3)

    def test_attainable_flops(self):
        model = RooflineModel()
        assert model.attainable_flops(1.0) == pytest.approx(SW26010PRO.dma_bandwidth)
        assert model.attainable_flops(1e6) == pytest.approx(SW26010PRO.peak_flops_per_cg)
        assert model.attainable_flops(0.0) == 0.0

    def test_compute_bound_classification(self):
        model = RooflineModel()
        assert not model.is_compute_bound(2.6)  # the paper's unfused mixed-precision AI
        assert model.is_compute_bound(50.0)

    def test_bound_time(self):
        model = RooflineModel()
        flops, data = 1e12, 1e9
        assert model.bound_time(flops, data) == pytest.approx(
            max(flops / model.peak_flops, data / model.memory_bandwidth)
        )

    def test_curve_and_classify(self):
        model = RooflineModel()
        curve = model.curve([1.0, 10.0, 100.0])
        assert len(curve) == 3
        assert curve[0][1] <= curve[1][1] <= curve[2][1]
        point = RooflinePoint("kernel", 20.0, 0.5 * model.attainable_flops(20.0))
        info = model.classify(point)
        assert info["fraction_of_bound"] == pytest.approx(0.5)
        assert info["compute_bound"] == 0.0
        assert point.bound_fraction(model) == pytest.approx(0.5)
