"""Tests of secondary slicing (the fused thread-level plan) and its invariants."""

from __future__ import annotations

import math

import pytest

from repro.core import FusedPlan, LifetimeSliceFinder, SecondarySlicer, extract_stem
from repro.hardware import SW26010PRO


@pytest.fixture(scope="module")
def fused_inputs(grid_tree, grid_stem):
    """Stem + process slicing + plan at a small LDM rank (forces real fusion)."""
    target = max(grid_tree.max_rank() - 4, 4)
    slicing = LifetimeSliceFinder(target).find(grid_tree, stem=grid_stem)
    ldm_rank = max(target - 3, 3)
    plan = SecondarySlicer(ldm_rank=ldm_rank).plan(grid_stem, process_sliced=slicing.sliced)
    return grid_stem, slicing, plan, ldm_rank


class TestPlanStructure:
    def test_groups_cover_every_step_exactly_once(self, fused_inputs):
        stem, _, plan, _ = fused_inputs
        covered = []
        for group in plan.groups:
            covered.extend(range(group.start, group.stop))
        assert covered == list(range(len(stem.steps)))
        assert plan.total_steps == len(stem.steps)

    def test_groups_are_contiguous_and_ordered(self, fused_inputs):
        _, _, plan, _ = fused_inputs
        position = 0
        for group in plan.groups:
            assert group.start == position
            assert group.stop > group.start
            position = group.stop

    def test_secondary_sliced_indices_survive_inside_group(self, fused_inputs):
        stem, slicing, plan, _ = fused_inputs
        for group in plan.groups:
            for position in range(group.start + 1, group.stop):
                result = stem.steps[position].result_indices - slicing.sliced
                branch = stem.steps[position].branch_indices - slicing.sliced
                for index in group.secondary_sliced:
                    assert index in result, "sliced index contracted inside a fused group"
                    assert index not in branch

    def test_in_ldm_working_set_fits(self, fused_inputs):
        stem, slicing, plan, ldm_rank = fused_inputs
        for group in plan.groups:
            assert group.kept_rank <= ldm_rank
            for position in range(group.start, group.stop - 1):
                # every intermediate stem tensor inside the group fits too
                result = stem.steps[position].result_indices - slicing.sliced
                assert len(result - group.secondary_sliced) <= ldm_rank

    def test_group_subtask_count(self, fused_inputs):
        _, _, plan, _ = fused_inputs
        for group in plan.groups:
            assert group.num_subtasks == 2 ** len(group.secondary_sliced)


class TestDMAAccounting:
    def test_transfer_savings_formula(self, fused_inputs):
        """Fusing a length-n group removes exactly n-1 get/put round trips."""
        _, _, plan, _ = fused_inputs
        expected_saved = sum(2 * (g.num_steps - 1) for g in plan.groups)
        assert plan.dma_transfers_saved() == expected_saved
        assert plan.dma_transfers_fused() == 2 * plan.num_groups
        assert plan.dma_transfers_step_by_step() == 2 * plan.total_steps

    def test_fused_bytes_never_exceed_step_by_step(self, fused_inputs):
        _, _, plan, _ = fused_inputs
        assert plan.bytes_moved_fused() <= plan.bytes_moved_step_by_step() + 1e-9

    def test_arithmetic_intensity_improves(self, fused_inputs):
        _, _, plan, _ = fused_inputs
        assert plan.intensity_gain() >= 1.0
        assert plan.arithmetic_intensity_fused() >= plan.arithmetic_intensity_step_by_step()

    def test_average_fused_steps(self, fused_inputs):
        _, _, plan, _ = fused_inputs
        assert plan.average_fused_steps == pytest.approx(plan.total_steps / plan.num_groups)


class TestNoOverheadInvariant:
    """§5.2: secondary slicing carries no computational overhead — the flops
    per secondary subtask times the number of subtasks equals the unsliced
    flops of the covered region."""

    def test_flops_conserved(self, fused_inputs):
        stem, slicing, plan, _ = fused_inputs
        tree = stem.tree
        for group in plan.groups:
            unsliced = 0.0
            for position in range(group.start, group.stop):
                union = tree.contraction_indices(stem.steps[position].node) - slicing.sliced
                unsliced += 2.0 ** len(union)
            per_subtask = 2.0**group.log2_flops
            # the secondary-sliced indices are alive on every contraction of
            # the group, so slicing them divides the per-subtask cost exactly
            # by the number of subtasks
            assert per_subtask * group.num_subtasks == pytest.approx(unsliced, rel=1e-9)


class TestConfiguration:
    def test_default_ldm_rank_is_13(self):
        assert SecondarySlicer().ldm_rank == SW26010PRO.ldm_max_rank() == 13

    def test_invalid_ldm_rank(self):
        with pytest.raises(ValueError):
            SecondarySlicer(ldm_rank=0)

    def test_max_fused_steps_cap(self, grid_stem, grid_tree):
        target = max(grid_tree.max_rank() - 4, 4)
        slicing = LifetimeSliceFinder(target).find(grid_tree, stem=grid_stem)
        capped = SecondarySlicer(ldm_rank=max(target - 2, 3), max_fused_steps=1).plan(
            grid_stem, process_sliced=slicing.sliced
        )
        assert all(group.num_steps == 1 for group in capped.groups)

    def test_plan_accepts_tree_directly(self, grid_tree):
        plan = SecondarySlicer(ldm_rank=max(grid_tree.max_rank() - 2, 3)).plan(grid_tree)
        assert isinstance(plan, FusedPlan)
        assert plan.total_steps == extract_stem(grid_tree).length

    def test_no_slicing_needed_when_ldm_is_large(self, grid_stem):
        plan = SecondarySlicer(ldm_rank=64).plan(grid_stem)
        assert all(not group.secondary_sliced for group in plan.groups)
        # with no index ever dying, the whole stem fuses into one group
        assert plan.num_groups == 1
