"""Tests of the dense state-vector reference simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import (
    Circuit,
    CircuitError,
    StateVectorSimulator,
    amplitude,
    random_brickwork_circuit,
    sample_bitstrings,
    simulate_statevector,
)


class TestBasics:
    def test_initial_state(self):
        sim = StateVectorSimulator(3)
        vec = sim.state_vector()
        assert vec[0] == 1.0
        assert np.allclose(vec[1:], 0.0)

    def test_reset(self):
        sim = StateVectorSimulator(2)
        sim.run(Circuit(2).add("h", 0))
        sim.reset()
        assert sim.amplitude((0, 0)) == pytest.approx(1.0)

    def test_width_guard(self):
        with pytest.raises(CircuitError):
            StateVectorSimulator(40)

    def test_circuit_width_mismatch(self):
        with pytest.raises(CircuitError):
            StateVectorSimulator(2).run(Circuit(3).add("h", 0))

    def test_bell_state(self):
        sim = StateVectorSimulator(2).run(Circuit(2).add("h", 0).add("cx", 0, 1))
        assert sim.amplitude((0, 0)) == pytest.approx(1 / np.sqrt(2))
        assert sim.amplitude((1, 1)) == pytest.approx(1 / np.sqrt(2))
        assert sim.amplitude((0, 1)) == pytest.approx(0.0)

    def test_ghz_state(self):
        c = Circuit(4).add("h", 0).add("cx", 0, 1).add("cx", 1, 2).add("cx", 2, 3)
        probs = StateVectorSimulator(4).run(c).probabilities()
        assert probs[0] == pytest.approx(0.5)
        assert probs[-1] == pytest.approx(0.5)
        assert np.sum(probs) == pytest.approx(1.0)


class TestAgainstUnitary:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_circuit_matches_dense_unitary(self, seed):
        circ = random_brickwork_circuit(4, 3, seed=seed)
        vec = simulate_statevector(circ)
        expected = circ.unitary() @ np.eye(16)[:, 0]
        assert np.allclose(vec, expected, atol=1e-10)

    def test_norm_preserved(self):
        circ = random_brickwork_circuit(6, 6, seed=9)
        sim = StateVectorSimulator(6).run(circ)
        assert sim.norm() == pytest.approx(1.0, abs=1e-10)

    def test_two_qubit_gate_on_non_adjacent_qubits(self):
        c = Circuit(3).add("x", 0).add("cx", 0, 2)
        sim = StateVectorSimulator(3).run(c)
        assert sim.amplitude((1, 0, 1)) == pytest.approx(1.0)

    def test_gate_order_of_qubit_arguments_matters(self):
        # CX with control on qubit 1, target on qubit 0
        c = Circuit(2).add("x", 1).add("cx", 1, 0)
        sim = StateVectorSimulator(2).run(c)
        assert sim.amplitude((1, 1)) == pytest.approx(1.0)


class TestAmplitudeHelpers:
    def test_amplitude_function(self):
        circ = Circuit(2).add("h", 0).add("cx", 0, 1)
        assert amplitude(circ, (1, 1)) == pytest.approx(1 / np.sqrt(2))

    def test_amplitude_bad_bitstring(self):
        sim = StateVectorSimulator(2)
        with pytest.raises(CircuitError):
            sim.amplitude((0,))
        with pytest.raises(CircuitError):
            sim.amplitude((0, 2))

    def test_single_precision_mode(self):
        circ = random_brickwork_circuit(4, 3, seed=1)
        vec32 = simulate_statevector(circ, dtype=np.complex64)
        vec64 = simulate_statevector(circ)
        assert vec32.dtype == np.complex64
        assert np.allclose(vec32, vec64, atol=1e-5)


class TestSampling:
    def test_sample_shape_and_values(self):
        circ = Circuit(3).add("h", 0).add("h", 1).add("h", 2)
        samples = sample_bitstrings(circ, 50, seed=1)
        assert samples.shape == (50, 3)
        assert set(np.unique(samples)) <= {0, 1}

    def test_sampling_respects_distribution(self):
        # |1> deterministic on qubit 0
        circ = Circuit(2).add("x", 0)
        samples = sample_bitstrings(circ, 20, seed=0)
        assert np.all(samples[:, 0] == 1)
        assert np.all(samples[:, 1] == 0)

    def test_sampling_reproducible(self):
        circ = random_brickwork_circuit(4, 2, seed=0)
        a = sample_bitstrings(circ, 10, seed=5)
        b = sample_bitstrings(circ, 10, seed=5)
        assert np.array_equal(a, b)
