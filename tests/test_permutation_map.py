"""Tests of the permutation maps and the §5.3.1 recursion-formula reduction."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.core import (
    InSituPermutation,
    PermutationSpec,
    PrecalculatedPermutation,
    ReducedPermutationMap,
    standard_contraction_permutation,
)


def _random_tensor(shape, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=shape) + 1j * rng.normal(size=shape)


STRATEGIES = [InSituPermutation, PrecalculatedPermutation, ReducedPermutationMap]


class TestSpec:
    def test_invalid_permutation_rejected(self):
        with pytest.raises(ValueError):
            PermutationSpec(perm=(0, 0), shape=(2, 2))

    def test_basic_properties(self):
        spec = PermutationSpec(perm=(2, 0, 1), shape=(2, 3, 4))
        assert spec.ndim == 3
        assert spec.size == 24
        assert spec.target_shape == (4, 2, 3)
        assert not spec.is_identity
        assert PermutationSpec(perm=(0, 1), shape=(2, 2)).is_identity

    def test_fixed_prefix_and_suffix(self):
        # the paper's A example: 0,1,2,4,5,7,8,3,6 keeps a 3-axis prefix
        spec = PermutationSpec(perm=(0, 1, 2, 4, 5, 7, 8, 3, 6), shape=(2,) * 9)
        assert spec.fixed_prefix == 3
        assert spec.fixed_suffix == 0
        # the paper's B example: 3,8,0,1,2,4,5,6,7 keeps nothing fixed in place,
        # but a suffix-preserving permutation does
        spec_b = PermutationSpec(perm=(2, 0, 1, 3, 4), shape=(2,) * 5)
        assert spec_b.fixed_suffix == 2
        assert spec_b.fixed_prefix == 0

    def test_identity_prefix_covers_everything(self):
        spec = PermutationSpec(perm=(0, 1, 2), shape=(2, 2, 2))
        assert spec.fixed_prefix == 3


class TestCorrectness:
    @pytest.mark.parametrize("strategy", STRATEGIES, ids=lambda s: s.__name__)
    @pytest.mark.parametrize(
        "perm,shape",
        [
            ((1, 0), (2, 3)),
            ((2, 0, 1), (2, 3, 4)),
            ((0, 2, 1), (2, 2, 2)),
            ((0, 1, 3, 2), (2, 2, 2, 2)),
            ((3, 1, 2, 0), (2, 3, 2, 3)),
            ((0, 1, 2, 4, 3, 5), (2,) * 6),
        ],
    )
    def test_matches_numpy_transpose(self, strategy, perm, shape):
        spec = PermutationSpec(perm=perm, shape=shape)
        array = _random_tensor(shape, seed=hash((perm, shape)) % 2**31)
        result = strategy(spec).permute(array)
        assert np.allclose(result, np.transpose(array, perm))

    @pytest.mark.parametrize("strategy", STRATEGIES, ids=lambda s: s.__name__)
    def test_all_rank4_permutations(self, strategy):
        shape = (2, 2, 2, 2)
        array = _random_tensor(shape, seed=9)
        for perm in itertools.permutations(range(4)):
            spec = PermutationSpec(perm=perm, shape=shape)
            assert np.allclose(strategy(spec).permute(array), np.transpose(array, perm)), perm

    def test_source_index_agreement(self):
        spec = PermutationSpec(perm=(0, 2, 1, 3), shape=(2,) * 4)
        in_situ = InSituPermutation(spec)
        pre = PrecalculatedPermutation(spec)
        reduced = ReducedPermutationMap(spec)
        for target in range(spec.size):
            assert in_situ.source_index(target) == pre.source_index(target)
            assert in_situ.source_index(target) == reduced.source_index(target)


class TestReduction:
    def test_paper_a_example_reduction_factor(self):
        # rank-9 tensor, first 3 axes fixed: the stored map shrinks by 2^3 = 8
        spec = PermutationSpec(perm=(0, 1, 2, 4, 5, 7, 8, 3, 6), shape=(2,) * 9)
        reduced = ReducedPermutationMap(spec)
        assert reduced.reduction_factor == pytest.approx(8.0)
        assert reduced.stored_entries == 2**6

    def test_suffix_reduction(self):
        spec = PermutationSpec(perm=(1, 2, 0, 3, 4, 5, 6), shape=(2,) * 7)
        reduced = ReducedPermutationMap(spec)
        # 4 trailing axes preserved: reduction of 2^4
        assert reduced.reduction_factor == pytest.approx(16.0)

    def test_storage_hierarchy(self):
        spec = PermutationSpec(perm=(0, 1, 3, 2, 4), shape=(2,) * 5)
        assert InSituPermutation(spec).stored_entries == 0
        assert PrecalculatedPermutation(spec).stored_entries == 32
        assert ReducedPermutationMap(spec).stored_entries < 32

    def test_identity_needs_one_entry(self):
        spec = PermutationSpec(perm=(0, 1, 2), shape=(2, 2, 2))
        assert ReducedPermutationMap(spec).stored_entries == 1


class TestContractionPermutation:
    def test_operand_a_moves_absorbed_axes_to_back(self):
        spec = standard_contraction_permutation(5, absorbed=(1, 3), operand="A")
        assert spec.perm == (0, 2, 4, 1, 3)

    def test_operand_b_moves_absorbed_axes_to_front(self):
        spec = standard_contraction_permutation(5, absorbed=(1, 3), operand="B")
        assert spec.perm == (1, 3, 0, 2, 4)

    def test_gemm_equivalence_of_permuted_contraction(self):
        # contracting over axes (1, 3) of A with axes (0, 1) of a small B is the
        # same as permuting A so the absorbed axes are trailing and doing a GEMM
        rng = np.random.default_rng(3)
        a = rng.normal(size=(2,) * 5)
        b = rng.normal(size=(2, 2, 2))
        direct = np.tensordot(a, b, axes=([1, 3], [0, 1]))
        spec = standard_contraction_permutation(5, absorbed=(1, 3), operand="A")
        a_perm = ReducedPermutationMap(spec).permute(a)
        via_gemm = (a_perm.reshape(8, 4) @ b.reshape(4, 2)).reshape(2, 2, 2, 2)
        assert np.allclose(direct, via_gemm)

    def test_validation(self):
        with pytest.raises(ValueError):
            standard_contraction_permutation(3, absorbed=(5,))
        with pytest.raises(ValueError):
            standard_contraction_permutation(3, absorbed=(1, 1))
        with pytest.raises(ValueError):
            standard_contraction_permutation(3, absorbed=(0,), operand="C")
