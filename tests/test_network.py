"""Tests of the TensorNetwork container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.tensornet import Tensor, TensorNetwork, TensorNetworkError


def _matrix_chain_network(rng=None):
    """A -- B -- C matrix chain with open ends: result is A @ B @ C."""
    rng = rng or np.random.default_rng(0)
    a = rng.normal(size=(2, 3))
    b = rng.normal(size=(3, 4))
    c = rng.normal(size=(4, 5))
    tn = TensorNetwork()
    tn.add_tensor(Tensor(("i", "x"), data=a))
    tn.add_tensor(Tensor(("x", "y"), data=b))
    tn.add_tensor(Tensor(("y", "j"), data=c))
    return tn, a, b, c


class TestStructure:
    def test_add_and_remove(self):
        tn = TensorNetwork()
        tid = tn.add_tensor(Tensor(("a",), data=np.ones(2)))
        assert tid in tn
        assert tn.num_tensors == 1
        tn.remove_tensor(tid)
        assert tn.num_tensors == 0
        assert "a" not in tn.indices

    def test_remove_unknown_raises(self):
        with pytest.raises(TensorNetworkError):
            TensorNetwork().remove_tensor(3)

    def test_duplicate_tid_rejected(self):
        tn = TensorNetwork()
        tn.add_tensor(Tensor(("a",), data=np.ones(2)), tid=5)
        with pytest.raises(TensorNetworkError):
            tn.add_tensor(Tensor(("b",), data=np.ones(2)), tid=5)

    def test_replace_tensor(self):
        tn = TensorNetwork()
        tid = tn.add_tensor(Tensor(("a",), data=np.ones(2)))
        tn.replace_tensor(tid, Tensor(("b",), data=np.zeros(3)))
        assert tn.tensor(tid).indices == ("b",)
        assert tn.size_of("b") == 3

    def test_index_owners_and_neighbors(self):
        tn, *_ = _matrix_chain_network()
        tids = tn.tensor_ids
        assert tn.index_owners("x") == frozenset({tids[0], tids[1]})
        assert tn.neighbors(tids[1]) == frozenset({tids[0], tids[2]})
        assert tn.shared_indices(tids[0], tids[1]) == frozenset({"x"})

    def test_output_indices_default_rule(self):
        tn, *_ = _matrix_chain_network()
        assert tn.output_indices() == frozenset({"i", "j"})
        assert tn.inner_indices() == frozenset({"x", "y"})

    def test_explicit_output_indices(self):
        tn, *_ = _matrix_chain_network()
        tn.set_output_indices(["i"])
        assert tn.output_indices() == frozenset({"i"})
        tn.set_output_indices(None)
        assert tn.output_indices() == frozenset({"i", "j"})

    def test_explicit_output_unknown_index(self):
        tn, *_ = _matrix_chain_network()
        with pytest.raises(TensorNetworkError):
            tn.set_output_indices(["nope"])

    def test_copy_is_independent(self):
        tn, *_ = _matrix_chain_network()
        clone = tn.copy()
        clone.remove_tensor(clone.tensor_ids[0])
        assert tn.num_tensors == 3
        assert clone.num_tensors == 2

    def test_metrics(self):
        tn, *_ = _matrix_chain_network()
        assert tn.max_rank() == 2
        assert tn.is_concrete()
        assert tn.total_log2_size() > 0

    def test_size_of_unknown_index(self):
        with pytest.raises(TensorNetworkError):
            TensorNetwork().size_of("a")


class TestGraphViews:
    def test_networkx_graph_nodes_and_edges(self):
        tn, *_ = _matrix_chain_network()
        g = tn.to_networkx()
        # 3 tensors + 2 virtual nodes for the open indices i, j
        assert sum(1 for n in g.nodes if isinstance(n, int)) == 3
        edge_indices = {d["index"] for *_e, d in g.edges(data=True)}
        assert edge_indices == {"i", "x", "y", "j"}

    def test_line_graph(self):
        tn, *_ = _matrix_chain_network()
        lg = tn.line_graph()
        assert set(lg.nodes) == {"i", "x", "y", "j"}
        assert lg.has_edge("i", "x")
        assert lg.has_edge("x", "y")
        assert not lg.has_edge("i", "j")


class TestContraction:
    def test_contract_pair_matrix_product(self):
        tn, a, b, c = _matrix_chain_network()
        tids = tn.tensor_ids
        new = tn.contract_pair(tids[0], tids[1])
        assert tn.num_tensors == 2
        assert np.allclose(tn.tensor(new).data, a @ b)

    def test_contract_pair_self_rejected(self):
        tn, *_ = _matrix_chain_network()
        with pytest.raises(TensorNetworkError):
            tn.contract_pair(tn.tensor_ids[0], tn.tensor_ids[0])

    def test_contract_all_matches_direct_product(self):
        tn, a, b, c = _matrix_chain_network()
        result = tn.contract_all()
        expected = a @ b @ c
        assert set(result.indices) == {"i", "j"}
        got = result.transposed(("i", "j")).data
        assert np.allclose(got, expected)

    def test_contract_all_with_explicit_order(self):
        tn, a, b, c = _matrix_chain_network()
        # contract (1,2) first -> new id 3, then (0,3)
        result = tn.contract_all(order=[(1, 2), (0, 3)])
        assert np.allclose(result.transposed(("i", "j")).data, a @ b @ c)

    def test_contract_all_closed_network_scalar(self):
        rng = np.random.default_rng(2)
        v = rng.normal(size=3)
        w = rng.normal(size=3)
        tn = TensorNetwork()
        tn.add_tensor(Tensor(("k",), data=v))
        tn.add_tensor(Tensor(("k",), data=w))
        result = tn.contract_all()
        assert result.data == pytest.approx(float(v @ w))

    def test_contract_all_empty_raises(self):
        with pytest.raises(TensorNetworkError):
            TensorNetwork().contract_all()

    def test_contract_all_requires_concrete(self):
        tn = TensorNetwork([Tensor(("a",), sizes={"a": 2})])
        with pytest.raises(TensorNetworkError):
            tn.contract_all()

    def test_hyper_index_kept_until_last_owner(self):
        # three tensors sharing one index: contracting two of them must keep
        # the index alive for the third
        rng = np.random.default_rng(3)
        x, y, z = rng.normal(size=(3, 4))
        tn = TensorNetwork()
        tn.add_tensor(Tensor(("k",), data=x))
        tn.add_tensor(Tensor(("k",), data=y))
        tn.add_tensor(Tensor(("k",), data=z))
        result = tn.contract_all()
        assert result.data == pytest.approx(float(np.sum(x * y * z)))

    def test_disconnected_components_outer_product(self):
        tn = TensorNetwork()
        tn.add_tensor(Tensor(("a",), data=np.array([2.0, 0.0])))
        tn.add_tensor(Tensor(("b",), data=np.array([0.0, 3.0])))
        result = tn.contract_all()
        assert result.ndim == 2
        assert result.transposed(("a", "b")).data[0, 1] == pytest.approx(6.0)
