"""Tests of the persistent process-pool :class:`ExecutionSession`.

The session must amortize pool spawn + segment publication across
consecutive ``run_subtasks`` calls without perturbing the
ordered-accumulation contract: every result inside a session is
bit-identical to :class:`SerialBackend`.  Lifecycle edges — data-only
republish, axis-order rebuild, idempotent close, workers spawned lazily
after a republish — are exercised explicitly.
"""

from __future__ import annotations

import gc
import os

import numpy as np
import pytest

from repro.circuits import random_brickwork_circuit
from repro.execution import (
    CorrelatedSampler,
    ExecutionSession,
    NullExecutionSession,
    SerialBackend,
    SharedMemoryProcessPoolBackend,
    SlicedExecutor,
    ThreadPoolBackend,
)
from repro.paths import GreedyOptimizer
from repro.tensornet import amplitude_network, simplify_network

WORKERS = 2


def _case(num_qubits=6, depth=4, seed=13):
    circ = random_brickwork_circuit(num_qubits, depth, seed=seed)
    bits = tuple(int(b) for b in np.random.default_rng(seed).integers(0, 2, num_qubits))
    tn = amplitude_network(circ, list(bits))
    simplify_network(tn)
    tree = GreedyOptimizer(seed=1).tree(tn)
    return tn, tree


@pytest.fixture(scope="module")
def case():
    return _case()


def _serial_value(tn, tree, sliced):
    return SlicedExecutor(tn, tree, sliced, backend=SerialBackend()).amplitude()


class TestSessionReuse:
    def test_pool_and_segments_built_once_across_three_runs(self, case):
        tn, tree = case
        sliced = sorted(tn.inner_indices())[:4]
        serial = _serial_value(tn, tree, sliced)
        backend = SharedMemoryProcessPoolBackend(max_workers=WORKERS)
        executor = SlicedExecutor(tn, tree, sliced, backend=backend)
        with executor.session() as session:
            values = [executor.amplitude() for _ in range(3)]
            assert all(value == serial for value in values)
            assert session.pool_launches == 1
            assert session.publications == 1
            assert session.generation == 0
            assert session.pool_is_live
        assert session.closed

    def test_backend_session_context_manager_form(self, case):
        tn, tree = case
        sliced = sorted(tn.inner_indices())[:4]
        serial = _serial_value(tn, tree, sliced)
        backend = SharedMemoryProcessPoolBackend(max_workers=WORKERS)
        executor = SlicedExecutor(tn, tree, sliced, backend=backend)
        plan, cache = executor.plan, executor._cache
        with backend.session(plan, tn, cache) as session:
            # the session was eagerly primed: pool spawned, segments live
            assert session.pool_is_live
            assert session.publications == 1
            assert executor.amplitude() == serial
            assert session.publications == 1  # reused, not republished
        assert session.closed

    def test_bit_identical_across_chunk_sizes_inside_session(self, case):
        tn, tree = case
        sliced = sorted(tn.inner_indices())[:4]
        serial = _serial_value(tn, tree, sliced)
        for chunk_size in (1, 3, None):
            backend = SharedMemoryProcessPoolBackend(
                max_workers=WORKERS, chunk_size=chunk_size
            )
            executor = SlicedExecutor(tn, tree, sliced, backend=backend)
            with executor.session():
                assert executor.amplitude() == serial
                assert executor.amplitude() == serial

    def test_subset_runs_share_the_session(self, case):
        tn, tree = case
        sliced = sorted(tn.inner_indices())[:4]
        backend = SharedMemoryProcessPoolBackend(max_workers=WORKERS)
        executor = SlicedExecutor(tn, tree, sliced, backend=backend)
        serial = _serial_value(tn, tree, sliced)
        with executor.session() as session:
            half = executor.num_subtasks // 2
            total = complex(executor.run(range(half)).require_data())
            total += complex(executor.run(range(half, executor.num_subtasks)).require_data())
            assert session.pool_launches == 1
            assert session.publications == 1
        assert total == pytest.approx(complex(serial), abs=1e-12)

    def test_batched_sweep_session(self, case):
        tn, tree = case
        sliced = sorted(tn.inner_indices())[:4]
        serial = SlicedExecutor(tn, tree, sliced, batch_indices=sliced[:2]).amplitude()
        backend = SharedMemoryProcessPoolBackend(max_workers=WORKERS)
        executor = SlicedExecutor(
            tn, tree, sliced, batch_indices=sliced[:2], backend=backend
        )
        with executor.session() as session:
            assert executor.amplitude() == serial
            assert executor.amplitude() == serial
            assert session.pool_launches == 1
            assert session.publications == 1

    def test_run_after_close_falls_back_to_ephemeral(self, case):
        tn, tree = case
        sliced = sorted(tn.inner_indices())[:4]
        serial = _serial_value(tn, tree, sliced)
        backend = SharedMemoryProcessPoolBackend(max_workers=WORKERS)
        executor = SlicedExecutor(tn, tree, sliced, backend=backend)
        session = executor.session()
        assert executor.amplitude() == serial
        session.close()
        session.close()  # idempotent
        assert session.closed
        # no active session: the call runs in an ephemeral one and still agrees
        assert executor.amplitude() == serial

    def test_closed_session_refuses_ensure(self, case):
        tn, tree = case
        sliced = sorted(tn.inner_indices())[:4]
        backend = SharedMemoryProcessPoolBackend(max_workers=WORKERS)
        executor = SlicedExecutor(tn, tree, sliced, backend=backend)
        session = executor.session()
        session.close()
        with pytest.raises(RuntimeError):
            session.ensure(executor.plan, tn, executor._cache)


class TestSessionInvalidation:
    def test_data_only_replacement_republishes_without_respawning(self, case):
        tn, tree = case
        tn = tn.copy()
        sliced = sorted(tn.inner_indices())[:4]
        backend = SharedMemoryProcessPoolBackend(max_workers=WORKERS)
        executor = SlicedExecutor(tn, tree, sliced, backend=backend)
        with executor.session() as session:
            first = executor.amplitude()
            assert first == _serial_value(tn, tree, sliced)
            tid = tn.tensor_ids[0]
            tensor = tn.tensor(tid)
            tn.replace_tensor(tid, tensor.with_data(tensor.require_data() * 2.0))
            second = executor.amplitude()
            assert second == _serial_value(tn, tree, sliced)
            assert second != first
            # segments were republished in place; the pool survived
            assert session.pool_launches == 1
            assert session.publications == 2
            assert session.generation == 1

    def test_axis_order_mutation_rebuilds_the_session(self, case):
        tn, tree = case
        tn = tn.copy()
        sliced = sorted(tn.inner_indices())[:4]
        backend = SharedMemoryProcessPoolBackend(max_workers=WORKERS)
        executor = SlicedExecutor(tn, tree, sliced, backend=backend)
        with executor.session() as session:
            first = executor.amplitude()
            assert first == _serial_value(tn, tree, sliced)
            tid = tn.tensor_ids[0]
            tensor = tn.tensor(tid)
            tn.replace_tensor(tid, tensor.transposed(tuple(reversed(tensor.indices))))
            second = executor.amplitude()
            assert second == _serial_value(tn, tree, sliced)
            # the layout every published buffer assumed is gone: full rebuild
            assert session.pool_launches == 2
            assert session.generation == 0

    def test_worker_spawned_after_republish_initializes_from_chunk_payload(self, case):
        tn, tree = case
        tn = tn.copy()
        sliced = sorted(tn.inner_indices())[:4]
        # large chunks: the first run submits fewer tasks than max_workers,
        # so some workers only spawn later — after the republish has
        # unlinked the segment names their initializer payload references
        backend = SharedMemoryProcessPoolBackend(max_workers=4, chunk_size=8)
        executor = SlicedExecutor(tn, tree, sliced, backend=backend)
        with executor.session() as session:
            executor.amplitude()
            tid = tn.tensor_ids[0]
            tensor = tn.tensor(tid)
            tn.replace_tensor(tid, tensor.with_data(tensor.require_data().copy()))
            backend.chunk_size = 1  # now submit many tasks: spawn the rest
            value = executor.amplitude()
            assert value == _serial_value(tn, tree, sliced)
            assert session.pool_launches == 1
            assert session.generation == 1


@pytest.mark.skipif(not os.path.isdir("/dev/shm"), reason="POSIX shm dir required")
class TestSegmentAccounting:
    """No shared-memory segment may outlive its session."""

    @staticmethod
    def _segment_count():
        return len(os.listdir("/dev/shm"))

    def test_close_unlinks_every_segment(self, case):
        tn, tree = case
        sliced = sorted(tn.inner_indices())[:4]
        before = self._segment_count()
        backend = SharedMemoryProcessPoolBackend(max_workers=WORKERS)
        executor = SlicedExecutor(tn, tree, sliced, backend=backend)
        with executor.session():
            executor.amplitude()
            assert self._segment_count() > before  # segments live mid-session
        assert self._segment_count() == before

    def test_ephemeral_runs_leave_nothing_behind(self, case):
        tn, tree = case
        sliced = sorted(tn.inner_indices())[:4]
        before = self._segment_count()
        backend = SharedMemoryProcessPoolBackend(max_workers=WORKERS)
        SlicedExecutor(tn, tree, sliced, backend=backend).amplitude()
        assert self._segment_count() == before

    def test_finalizer_unlinks_segments_without_explicit_close(self, case):
        tn, tree = case
        sliced = sorted(tn.inner_indices())[:4]
        before = self._segment_count()
        backend = SharedMemoryProcessPoolBackend(max_workers=WORKERS)
        executor = SlicedExecutor(tn, tree, sliced, backend=backend)
        executor.session()
        executor.amplitude()
        assert self._segment_count() > before
        # drop every reference to the session without closing it: the
        # weakref finalizer must drain the pool and unlink the segments
        backend._session = None
        del executor, backend
        gc.collect()
        assert self._segment_count() == before


class TestNullSessions:
    @pytest.mark.parametrize(
        "make_backend",
        [lambda: SerialBackend(), lambda: ThreadPoolBackend(max_workers=2)],
        ids=["serial", "threads"],
    )
    def test_inprocess_backends_get_noop_sessions(self, case, make_backend):
        tn, tree = case
        sliced = sorted(tn.inner_indices())[:4]
        serial = _serial_value(tn, tree, sliced)
        backend = make_backend()
        executor = SlicedExecutor(tn, tree, sliced, backend=backend)
        with executor.session() as session:
            assert isinstance(session, NullExecutionSession)
            assert executor.amplitude() == serial
        assert session.closed
        session.close()  # idempotent
        backend.close()  # no-op

    def test_reference_mode_rejects_sessions(self, case):
        tn, tree = case
        sliced = sorted(tn.inner_indices())[:2]
        executor = SlicedExecutor(tn, tree, sliced, mode="reference")
        with pytest.raises(ValueError):
            executor.session()

    def test_backend_itself_is_a_context_manager(self, case):
        tn, tree = case
        sliced = sorted(tn.inner_indices())[:4]
        serial = _serial_value(tn, tree, sliced)
        with SharedMemoryProcessPoolBackend(max_workers=WORKERS) as backend:
            executor = SlicedExecutor(tn, tree, sliced, backend=backend)
            session = executor.session()
            assert executor.amplitude() == serial
        assert session.closed


class TestSamplerSession:
    def test_one_pool_across_base_bitstrings(self):
        circ = random_brickwork_circuit(6, 4, seed=21)
        bases = [(1, 0, 0, 1, 0, 1), (0, 1, 1, 0, 1, 0)]
        kwargs = dict(open_qubits=(1, 4), target_rank=4, max_trials=4, seed=2)
        serial_batches = [
            CorrelatedSampler(circ, **kwargs).compute_batch(base) for base in bases
        ]
        backend = SharedMemoryProcessPoolBackend(max_workers=WORKERS)
        sampler = CorrelatedSampler(circ, backend=backend, **kwargs)
        with sampler.session() as session:
            pooled_batches = [sampler.compute_batch(base) for base in bases]
            if isinstance(session, ExecutionSession):
                # each batch compiles its own plan, so segments republish
                # per batch — but the worker pool is spawned exactly once
                assert session.pool_launches <= 1
        for serial_batch, pooled_batch in zip(serial_batches, pooled_batches):
            np.testing.assert_array_equal(
                serial_batch.amplitudes, pooled_batch.amplitudes
            )

    def test_sampler_is_a_context_manager(self):
        circ = random_brickwork_circuit(6, 4, seed=21)
        backend = SharedMemoryProcessPoolBackend(max_workers=WORKERS)
        with CorrelatedSampler(
            circ, open_qubits=(1, 4), target_rank=4, max_trials=4, seed=2, backend=backend
        ) as sampler:
            batch = sampler.compute_batch((1, 0, 0, 1, 0, 1))
            assert batch.num_samples == 4
        # exiting the sampler closed the backend's session
        assert backend._session is None

    def test_serial_sampler_session_is_noop(self):
        circ = random_brickwork_circuit(6, 4, seed=21)
        sampler = CorrelatedSampler(
            circ, open_qubits=(1, 4), target_rank=4, max_trials=4, seed=2
        )
        with sampler.session() as session:
            assert isinstance(session, NullExecutionSession)
            sampler.compute_batch((1, 0, 0, 1, 0, 1))
        sampler.close()  # no backend: no-op


class TestPlannerSession:
    def test_planner_reuses_the_pool_across_executions(self):
        from repro.pipeline import SimulationPlanner

        circ = random_brickwork_circuit(6, 4, seed=3)
        with SimulationPlanner(
            target_rank=5,
            max_trials=4,
            seed=0,
            backend=SharedMemoryProcessPoolBackend(max_workers=WORKERS),
        ) as planner:
            plan = planner.plan_circuit(circ, concrete=True)
            serial = SimulationPlanner(
                target_rank=5, max_trials=4, seed=0
            ).execute_plan(plan)
            with planner.session() as session:
                first = planner.execute_plan(plan)
                second = planner.execute_plan(plan)
            assert first == second == serial
            if isinstance(session, ExecutionSession):
                assert session.pool_launches <= 1
