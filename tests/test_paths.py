"""Tests of the contraction-path optimizers (greedy, partition, community, DP, SA, hyper)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import amplitude, random_brickwork_circuit
from repro.execution import TreeExecutor
from repro.paths import (
    CommunityOptimizer,
    DynamicProgrammingOptimizer,
    GreedyOptimizer,
    HyperOptimizer,
    PartitionOptimizer,
    TreeAnnealer,
    anneal_tree,
    greedy_ssa_path,
    optimal_ssa_path,
)
from repro.tensornet import ContractionTree, amplitude_network, simplify_network


def _valid_tree(network, ssa_path):
    """Building the tree validates connectivity/consumption of the path."""
    return ContractionTree.from_network(network, ssa_path)


ALL_OPTIMIZERS = [
    GreedyOptimizer(seed=0),
    GreedyOptimizer(temperature=0.5, seed=1),
    PartitionOptimizer(seed=0),
    PartitionOptimizer(cutoff=4, seed=2),
    CommunityOptimizer(seed=0),
]


class TestPathValidity:
    @pytest.mark.parametrize("optimizer", ALL_OPTIMIZERS, ids=lambda o: type(o).__name__)
    def test_paths_are_valid_on_grid_network(self, grid_network, optimizer):
        ssa = optimizer.ssa_path(grid_network)
        assert len(ssa) == grid_network.num_tensors - 1
        tree = _valid_tree(grid_network, ssa)
        assert tree.num_leaves == grid_network.num_tensors

    @pytest.mark.parametrize("optimizer", ALL_OPTIMIZERS, ids=lambda o: type(o).__name__)
    def test_paths_are_valid_on_small_network(self, small_network, optimizer):
        tree = optimizer.tree(small_network)
        assert tree.num_leaves == small_network.num_tensors

    def test_greedy_single_tensor_network(self):
        circ = random_brickwork_circuit(2, 1, seed=0)
        tn = amplitude_network(circ, [0, 0])
        simplify_network(tn)
        if tn.num_tensors == 1:
            assert greedy_ssa_path(tn) == []

    def test_greedy_deterministic_at_zero_temperature(self, grid_network):
        a = GreedyOptimizer(seed=1).ssa_path(grid_network)
        b = GreedyOptimizer(seed=2).ssa_path(grid_network)
        assert a == b

    def test_greedy_temperature_changes_path(self, grid_network):
        a = GreedyOptimizer(temperature=1.0, seed=1).ssa_path(grid_network)
        b = GreedyOptimizer(temperature=1.0, seed=7).ssa_path(grid_network)
        # different noise realisations explore different trees (overwhelmingly likely)
        assert a != b


class TestPathQuality:
    def test_dp_is_optimal_among_methods(self, small_network):
        if small_network.num_tensors > 14:
            pytest.skip("network too large for DP")
        dp_tree = DynamicProgrammingOptimizer().tree(small_network)
        greedy_tree = GreedyOptimizer(seed=0).tree(small_network)
        assert dp_tree.contraction_cost() <= greedy_tree.contraction_cost() + 1e-6

    def test_dp_refuses_large_networks(self, grid_network):
        if grid_network.num_tensors <= 18:
            pytest.skip("grid network unexpectedly small")
        with pytest.raises(ValueError):
            DynamicProgrammingOptimizer().ssa_path(grid_network)

    def test_dp_size_objective(self, small_network):
        if small_network.num_tensors > 12:
            pytest.skip("network too large for DP")
        size_tree = DynamicProgrammingOptimizer(minimize="size").tree(small_network)
        flops_tree = DynamicProgrammingOptimizer(minimize="flops").tree(small_network)
        assert size_tree.max_rank() <= flops_tree.max_rank()

    def test_dp_invalid_objective(self):
        with pytest.raises(ValueError):
            DynamicProgrammingOptimizer(minimize="banana")

    def test_annealer_never_worse(self, grid_network):
        tree = GreedyOptimizer(temperature=1.0, seed=5).tree(grid_network)
        result = TreeAnnealer(seed=3).refine(tree)
        assert result.final_log10_cost <= result.initial_log10_cost + 1e-9
        assert result.tree.num_leaves == tree.num_leaves

    def test_annealer_respects_size_bound(self, grid_network):
        tree = GreedyOptimizer(seed=0).tree(grid_network)
        bound = tree.max_intermediate_log2_size()
        refined = anneal_tree(tree, seed=1, max_size_log2=bound)
        assert refined.max_intermediate_log2_size() <= bound + 1e-9

    def test_annealer_parameter_validation(self):
        with pytest.raises(ValueError):
            TreeAnnealer(cooling=1.5)


class TestNumericalEquivalence:
    @pytest.mark.parametrize(
        "optimizer",
        [GreedyOptimizer(seed=0), PartitionOptimizer(seed=0), CommunityOptimizer(seed=0)],
        ids=lambda o: type(o).__name__,
    )
    def test_tree_execution_matches_statevector(self, optimizer):
        circ = random_brickwork_circuit(5, 3, seed=6)
        bits = [1, 0, 0, 1, 0]
        tn = amplitude_network(circ, bits)
        simplify_network(tn)
        tree = optimizer.tree(tn)
        value = TreeExecutor().amplitude(tn, tree)
        assert value == pytest.approx(amplitude(circ, bits), abs=1e-9)

    def test_annealed_tree_still_correct(self):
        circ = random_brickwork_circuit(5, 3, seed=7)
        bits = [0, 1, 1, 0, 1]
        tn = amplitude_network(circ, bits)
        simplify_network(tn)
        tree = anneal_tree(GreedyOptimizer(seed=0).tree(tn), seed=4)
        value = TreeExecutor().amplitude(tn, tree)
        assert value == pytest.approx(amplitude(circ, bits), abs=1e-9)


class TestHyperOptimizer:
    def test_search_returns_best_of_trials(self, grid_network):
        opt = HyperOptimizer(max_trials=6, seed=0)
        tree = opt.search(grid_network)
        assert opt.trials
        best = opt.best_record()
        assert best is not None
        assert tree.log10_total_cost() == pytest.approx(best.log10_flops, abs=1e-6)

    def test_memory_objective_respects_target_when_feasible(self, grid_network):
        unconstrained = HyperOptimizer(max_trials=6, minimize="flops", seed=0).search(
            grid_network
        )
        target = unconstrained.max_rank()
        constrained = HyperOptimizer(
            max_trials=6, minimize="combo", memory_target_rank=target, seed=0
        ).search(grid_network)
        assert constrained.max_rank() <= max(target, unconstrained.max_rank())

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            HyperOptimizer(methods=("bogus",))
        with pytest.raises(ValueError):
            HyperOptimizer(minimize="bogus")

    def test_trial_summary(self, grid_network):
        opt = HyperOptimizer(max_trials=4, seed=0)
        opt.search(grid_network)
        summary = opt.trial_summary()
        assert summary
        for stats in summary.values():
            assert stats["best_log10_flops"] <= stats["mean_log10_flops"] + 1e-9

    def test_fixed_seed_is_deterministic(self, grid_network):
        first = HyperOptimizer(max_trials=8, seed=42)
        first_tree = first.search(grid_network)
        second = HyperOptimizer(max_trials=8, seed=42)
        second_tree = second.search(grid_network)
        assert [
            (r.method, r.log10_flops, r.max_rank, r.seed) for r in first.trials
        ] == [(r.method, r.log10_flops, r.max_rank, r.seed) for r in second.trials]
        assert first_tree.log10_total_cost() == second_tree.log10_total_cost()
        assert first_tree.max_rank() == second_tree.max_rank()
        # a different seed explores different trials
        other = HyperOptimizer(max_trials=8, seed=43)
        other.search(grid_network)
        assert [r.seed for r in other.trials] != [r.seed for r in first.trials]

    @pytest.mark.parametrize("minimize", ["flops", "size", "combo"])
    def test_trial_summary_consistent_with_best_record(self, grid_network, minimize):
        opt = HyperOptimizer(
            max_trials=8, minimize=minimize, memory_target_rank=30, seed=7
        )
        opt.search(grid_network)
        best = opt.best_record()
        assert best is not None
        # the winner carries the minimal score over all recorded trials
        scores = [r.score(minimize, opt.memory_target_rank) for r in opt.trials]
        assert best.score(minimize, opt.memory_target_rank) == min(scores)
        # per-method summary agrees with the raw records, and the global
        # best flops is attained within the winning method's bucket
        summary = opt.trial_summary()
        for method, stats in summary.items():
            method_costs = [r.log10_flops for r in opt.trials if r.method == method]
            assert stats["trials"] == float(len(method_costs))
            assert stats["best_log10_flops"] == min(method_costs)
        assert summary[best.method]["best_log10_flops"] <= best.log10_flops + 1e-12
