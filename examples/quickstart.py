"""Quickstart: plan and run a sliced tensor-network simulation end to end.

This walks the whole pipeline on a laptop-scale circuit:

1. generate a Sycamore-style random quantum circuit on a small grid,
2. plan the simulation (tensor network -> contraction tree -> lifetime-based
   slicing -> fused thread-level plan -> Sunway performance estimate),
3. numerically execute the sliced contraction and check it against the
   dense state-vector simulator.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import SimulationPlanner
from repro.analysis import format_kv
from repro.circuits import amplitude, grid_circuit


def main() -> None:
    # a 3x4 qubit grid, 8 cycles of random single-qubit gates + fSim couplers
    circuit = grid_circuit(rows=3, cols=4, cycles=8, seed=7)
    bitstring = [0, 1, 0, 1, 1, 0, 0, 1, 1, 0, 1, 0]
    print(f"circuit: {circuit}")

    # plan with a deliberately small memory target so slicing actually happens
    planner = SimulationPlanner(target_rank=7, ldm_rank=5, max_trials=8, seed=0)
    plan = planner.plan_circuit(circuit, bitstring=bitstring, concrete=True)

    print(format_kv(plan.summary(), title="\nplanning summary"))
    print(f"\nsliced edges ({plan.slicing.num_sliced}): {sorted(plan.slicing.sliced)}")
    print(f"slicing overhead (Eq. 2): {plan.slicing.overhead:.4f}")
    print(
        "fused plan: "
        f"{plan.fused_plan.num_groups} groups covering {plan.fused_plan.total_steps} stem steps, "
        f"{plan.fused_plan.dma_transfers_saved()} DMA transfers saved"
    )

    # execute every slicing subtask and accumulate — this is exactly what the
    # machine does across nodes, run here sequentially
    value = planner.execute_plan(plan)
    reference = amplitude(circuit, bitstring)
    print(f"\nsliced TNC amplitude : {value:.12f}")
    print(f"state-vector reference: {reference:.12f}")
    print(f"agreement             : {abs(value - reference):.2e}")

    # performance picture on the Sunway model
    projection = plan.headline_projection(measured_nodes=64, projected_nodes=1024)
    print(format_kv(projection.summary(), title="\nSunway performance projection (modelled)"))


if __name__ == "__main__":
    main()
