"""Scenario 2 — choosing between slicing and stacking on a storage hierarchy.

The paper's §3.3 decision: on each boundary of the disk → main-memory → LDM
hierarchy, should the memory bound be met by slicing (redundant computation)
or stacking (streaming data through the boundary)?  This example sweeps the
target size on a mid-size RQC, prints the Fig. 7-style overhead distribution,
and shows how the recommended strategy flips between the slow IO boundary
and the fast DMA boundary — plus what the lifetime machinery says about each
candidate edge.

Run with:  python examples/slicing_strategies.py
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.circuits import grid_circuit
from repro.core import (
    LifetimeSliceFinder,
    SliceStackAnalyzer,
    SlicingCostModel,
    compute_lifetimes,
    extract_stem,
)
from repro.paths import HyperOptimizer
from repro.tensornet import amplitude_network, simplify_network


def main() -> None:
    circuit = grid_circuit(rows=5, cols=6, cycles=10, seed=3)
    network = amplitude_network(circuit, [0] * circuit.num_qubits, concrete=False)
    simplify_network(network)
    tree = HyperOptimizer(max_trials=8, seed=0).search(network)
    print(
        f"workload: {circuit.num_qubits}-qubit grid RQC, "
        f"{network.num_tensors} tensors, log10 flops {tree.log10_total_cost():.2f}, "
        f"peak rank {tree.max_rank()}"
    )

    # --- lifetime ranking of the stem's edges -----------------------------
    stem = extract_stem(tree)
    lifetimes = compute_lifetimes(tree, edges=stem.edges())
    ranked = sorted(lifetimes.values(), key=lambda lt: -lt.length)[:10]
    print(
        format_table(
            [
                {"edge": lt.edge, "lifetime_length": lt.length, "on_stem": len(lt.restricted_to(set(stem.nodes)))}
                for lt in ranked
            ],
            title="\nlongest-lifetime edges (the slice finder's favourite candidates)",
        )
    )

    # --- overhead distribution and the slice-or-stack decision ------------
    analyzer = SliceStackAnalyzer(tree, slicer="lifetime")
    max_rank = tree.max_rank()
    targets = [t for t in range(max_rank - 1, max_rank - 14, -3) if t >= 5]
    rows = analyzer.overhead_distribution(targets)
    for row in rows:
        row["disk_boundary"] = "slice" if row["prefer_slice_disk_to_main_memory"] else "stack"
        row["ldm_boundary"] = "slice" if row["prefer_slice_main_memory_to_ldm"] else "stack"
    print(
        format_table(
            rows,
            columns=[
                "target_rank",
                "slicing_overhead",
                "stacking_overhead_disk_to_main_memory",
                "stacking_overhead_main_memory_to_ldm",
                "disk_boundary",
                "ldm_boundary",
            ],
            title="\noverhead distribution across target sizes (Fig. 7 analogue)",
        )
    )

    # --- what the chosen slicing looks like at one target ------------------
    target = max(max_rank - 6, 5)
    model = SlicingCostModel(tree)
    result = LifetimeSliceFinder(target).find(tree, cost_model=model)
    print(
        f"\nat target rank {target}: slice {result.num_sliced} edges "
        f"-> {result.num_subtasks:.0f} independent subtasks, overhead {result.overhead:.3f}"
    )
    print(
        "paper's rule of thumb: slice across the slow IO boundary, "
        "stack (fuse) across the fast DMA boundary — compare the two strategy columns above."
    )


if __name__ == "__main__":
    main()
