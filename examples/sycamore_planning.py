"""Scenario 1 — planning the Sycamore RQC verification workload.

The paper's motivating workload: computing amplitudes of Google's Sycamore
random circuits to validate "quantum advantage" claims.  The 53-qubit network
is far too large to execute numerically on a laptop, so everything here runs
on the *abstract* (planning-only) network — exactly what the production
pipeline does before launching the machine-scale run:

* convert + simplify the circuit's tensor network,
* search for a contraction tree (recursive bisection + SA refinement),
* extract the stem and compare the lifetime slicing pipeline against the
  cotengra-style greedy baseline,
* plan the fused thread-level execution and project wall time / sustained
  Pflop/s on the Sunway model.

Run with:  python examples/sycamore_planning.py [cycles]
"""

from __future__ import annotations

import sys

from repro.analysis import format_kv, format_table, stem_summary, tree_summary
from repro.circuits import sycamore_circuit
from repro.core import (
    GreedySliceBaseline,
    LifetimeSliceFinder,
    SecondarySlicer,
    SimulatedAnnealingSliceRefiner,
    SlicingCostModel,
    extract_stem,
)
from repro.execution import ProcessScheduler, ThreadLevelSimulator
from repro.paths import PartitionOptimizer, TreeAnnealer
from repro.tensornet import amplitude_network, simplify_network


def main(cycles: int = 12) -> None:
    print(f"building Sycamore-style circuit, 53 qubits, m = {cycles} cycles ...")
    circuit = sycamore_circuit(cycles=cycles, seed=0)
    network = amplitude_network(circuit, [0] * circuit.num_qubits, concrete=False)
    report = simplify_network(network)
    print(
        f"tensor network: {report.initial_tensors} -> {network.num_tensors} tensors "
        f"after rank-1/rank-2 absorption, {len(network.indices)} edges"
    )

    print("\nsearching for a contraction tree (recursive bisection + SA refinement) ...")
    tree = PartitionOptimizer(seed=0).tree(network)
    tree = TreeAnnealer(seed=1, initial_temperature=0.1, cooling=0.9).refine(tree).tree
    print(format_kv(tree_summary(tree), title="contraction tree"))

    stem = extract_stem(tree)
    print(format_kv(stem_summary(stem), title="\nstem"))

    target = max(tree.max_rank() - 7, 10)
    model = SlicingCostModel(tree)
    print(f"\nslicing to target rank {target} (fits one node's united main memory) ...")
    ours = LifetimeSliceFinder(target).find(tree, stem=stem, cost_model=model)
    ours = SimulatedAnnealingSliceRefiner(seed=0).refine(tree, ours.sliced, target, cost_model=model)
    baseline = GreedySliceBaseline(target).find(tree, cost_model=model)
    print(
        format_table(
            [
                {
                    "strategy": "lifetime finder + SA refiner (ours)",
                    "sliced_edges": ours.num_sliced,
                    "subtasks": ours.num_subtasks,
                    "overhead": ours.overhead,
                },
                {
                    "strategy": "greedy baseline (cotengra-style)",
                    "sliced_edges": baseline.num_sliced,
                    "subtasks": baseline.num_subtasks,
                    "overhead": baseline.overhead,
                },
            ],
            title="slicing strategies",
        )
    )

    print("\nplanning the fused thread-level execution (secondary slicing) ...")
    plan = SecondarySlicer(ldm_rank=13).plan(stem, process_sliced=ours.sliced)
    simulator = ThreadLevelSimulator()
    step = simulator.simulate_step_by_step(stem, ours.sliced)
    fused = simulator.simulate_fused(plan, ours.sliced)
    print(
        format_table(
            [
                {"schedule": "step-by-step", **{k: round(v, 4) for k, v in step.breakdown().items()}},
                {"schedule": "fused", **{k: round(v, 4) for k, v in fused.breakdown().items()}},
            ],
            title="thread-level time breakdown per subtask (seconds, modelled)",
        )
    )
    print(
        f"arithmetic intensity: {step.arithmetic_intensity:.2f} -> {fused.arithmetic_intensity:.2f} "
        f"flop/byte (gain {fused.arithmetic_intensity / step.arithmetic_intensity:.1f}x)"
    )

    subtask_seconds = fused.total_seconds / max(stem.cost_fraction(), 1e-9)
    total_flops = 8.0 * tree.total_cost(ours.sliced)
    scheduler = ProcessScheduler(
        subtask_seconds=subtask_seconds,
        subtask_flops=total_flops / max(ours.num_subtasks, 1.0),
    )
    for nodes in (1024, 107_520):
        elapsed = scheduler.elapsed_seconds(int(ours.num_subtasks), nodes)
        pflops = scheduler.sustained_flops(int(ours.num_subtasks), nodes) / 1e15
        print(f"projected on {nodes:>7} nodes: {elapsed:12.1f} s, {pflops:8.3f} Pflop/s sustained")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 12)
