"""Calibrated projections: measure real runs, fit a cost model, project.

The §6.2 projections need a per-subtask time.  Instead of assuming one,
this example closes the loop from measurement to projection:

1. plan a laptop-scale sliced contraction,
2. execute every subtask for real on two execution backends (serial and
   thread pool), letting ``PlanStats`` stamp per-subtask wall times,
3. fit a ``CalibratedCostModel`` from those measurements (one coefficient
   set per backend),
4. compare its predictions against the analytic roofline model and
   against the measurements themselves,
5. rebuild the Fig. 11 strong-scaling sweep and the §6.2 headline
   projection from the *measured* per-backend subtask seconds.

Run with:  python examples/calibrated_projections.py
"""

from __future__ import annotations

from repro.analysis import (
    cost_model_summary,
    format_kv,
    format_table,
    predicted_vs_measured,
)
from repro.circuits import grid_circuit
from repro.core import LifetimeSliceFinder
from repro.costs import AnalyticCostModel, CalibratedCostModel
from repro.execution import (
    HeadlineProjection,
    SlicedExecutor,
    ThreadPoolBackend,
    strong_scaling,
)
from repro.paths import HyperOptimizer
from repro.tensornet import amplitude_network, simplify_network


def main() -> None:
    # ------------------------------------------------------------------
    # 1. plan a small sliced workload
    circuit = grid_circuit(rows=3, cols=4, cycles=8, seed=7)
    network = amplitude_network(circuit, [0] * circuit.num_qubits, concrete=True)
    simplify_network(network)
    tree = HyperOptimizer(max_trials=8, seed=1).search(network)
    target = max(tree.max_rank() - 5, 4)
    slicing = LifetimeSliceFinder(target).find(tree)
    inner = network.inner_indices()
    sliced = frozenset(ix for ix in slicing.sliced if ix in inner)
    print(f"tree: {tree}")
    print(f"sliced {len(sliced)} indices -> {2 ** len(sliced)} subtasks")

    # ------------------------------------------------------------------
    # 2. measure: run the same workload on two backends
    records = []
    for backend in (None, ThreadPoolBackend(max_workers=2)):
        executor = SlicedExecutor(network, tree, sliced, backend=backend)
        executor.run()
        records.append(executor.calibration_record())
        stats = executor.stats
        print(
            f"measured {records[-1].backend}: "
            f"{len(stats.subtask_seconds)} subtasks, "
            f"mean {stats.mean_subtask_seconds:.3e}s, "
            f"stages {dict((k, round(v, 4)) for k, v in stats.stage_seconds.items())}"
        )

    # ------------------------------------------------------------------
    # 3. fit the calibrated model (analytic roofline as fallback)
    analytic = AnalyticCostModel()
    model = CalibratedCostModel.fit(records, fallback=analytic)
    print(f"\nfitted: {model}")

    # 4. predictions per backend, and predicted-vs-measured
    rows = cost_model_summary(model, tree, sliced, backends=list(model.backends))
    print(format_table(rows, title="\ncalibrated predictions per backend"))
    executor = SlicedExecutor(network, tree, sliced)
    executor.run()
    print(
        format_kv(
            predicted_vs_measured(model, executor.stats, tree, sliced, backend="serial"),
            title="\npredicted vs measured (serial)",
        )
    )

    # ------------------------------------------------------------------
    # 5. self-calibrating §6.2 projections from measured subtask seconds
    points = strong_scaling(
        cost_model=model,
        tree=tree,
        sliced=sliced,
        backend="serial",
        num_subtasks=2 ** len(sliced),
        node_counts=[1, 2, 4, 8],
    )
    print(
        format_table(
            [
                {
                    "nodes": p.num_nodes,
                    "elapsed_s": p.elapsed_seconds,
                    "speedup": p.speedup,
                    "efficiency": p.efficiency,
                }
                for p in points
            ],
            title="\nstrong scaling from measured subtask seconds",
        )
    )
    projection = HeadlineProjection.from_cost_model(
        model, tree, sliced, measured_nodes=4, projected_nodes=64, backend="serial"
    )
    print(format_kv(projection.summary(), title="\nheadline projection (calibrated)"))


if __name__ == "__main__":
    main()
