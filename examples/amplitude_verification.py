"""Scenario 3 — verifying a noisy-hardware experiment with sliced TNC amplitudes.

The practical use of a classical RQC simulator (per the paper's introduction)
is validation: compute exact amplitudes for bitstrings sampled from a quantum
processor and estimate the cross-entropy benchmarking (XEB) fidelity.  This
example does exactly that on a circuit small enough to cross-check against
the dense state-vector simulator:

* sample "experimental" bitstrings from the ideal output distribution,
* recompute each bitstring's amplitude with the sliced tensor-network
  pipeline (one independent contraction per bitstring, each sliced into
  subtasks — the structure of the paper's 1 M correlated samples run),
* estimate the linear XEB fidelity and compare against the expectation for
  an ideal device (≈ 1) and for a random guesser (≈ 0).

Run with:  python examples/amplitude_verification.py
"""

from __future__ import annotations

import numpy as np

from repro import SimulationPlanner
from repro.analysis import format_table
from repro.circuits import StateVectorSimulator, grid_circuit
from repro.execution import SlicedExecutor
from repro.tensornet import amplitude_network, simplify_network
from repro.paths import HyperOptimizer


def main(num_samples: int = 12) -> None:
    circuit = grid_circuit(rows=3, cols=3, cycles=8, seed=11)
    n = circuit.num_qubits
    dim = 2**n

    # "experimental" samples: drawn from the ideal distribution (a perfect device)
    reference = StateVectorSimulator(n).run(circuit)
    samples = reference.sample(num_samples, seed=4)
    random_samples = np.random.default_rng(5).integers(0, 2, size=(num_samples, n))

    planner = SimulationPlanner(target_rank=8, ldm_rank=5, max_trials=6, seed=1)

    def tnc_probability(bits) -> float:
        """Probability |<bits|C|0...0>|^2 via the sliced TNC pipeline."""
        network = amplitude_network(circuit, list(bits), concrete=True)
        report = simplify_network(network)
        tree = HyperOptimizer(max_trials=4, minimize="combo", memory_target_rank=8, seed=2).search(
            network
        )
        plan = planner.plan_tree(network, tree, scalar_prefactor=report.scalar_prefactor)
        executor = SlicedExecutor(network, tree, plan.slicing.sliced)
        amp = executor.amplitude() * report.scalar_prefactor
        return float(abs(amp) ** 2)

    rows = []
    device_probs = []
    for i, bits in enumerate(samples):
        p_tnc = tnc_probability(bits)
        p_ref = float(np.abs(reference.amplitude(bits)) ** 2)
        device_probs.append(p_tnc)
        rows.append(
            {
                "bitstring": "".join(str(b) for b in bits),
                "p_tnc": p_tnc,
                "p_statevector": p_ref,
                "abs_error": abs(p_tnc - p_ref),
            }
        )
    print(format_table(rows, title="sampled bitstrings: sliced-TNC vs state-vector probabilities", precision=5))

    random_probs = [tnc_probability(bits) for bits in random_samples]

    # linear XEB fidelity: F = D * <p(sampled)> - 1
    xeb_device = dim * float(np.mean(device_probs)) - 1.0
    xeb_random = dim * float(np.mean(random_probs)) - 1.0
    print(f"\nlinear XEB of ideal-device samples : {xeb_device:+.3f}   (expected ≈ +1 for an ideal device)")
    print(f"linear XEB of uniform random guesses: {xeb_random:+.3f}   (expected ≈ 0)")
    max_err = max(row["abs_error"] for row in rows)
    print(f"worst |p_tnc - p_statevector| over the batch: {max_err:.2e}")


if __name__ == "__main__":
    main()
